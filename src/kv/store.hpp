#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "alloc/object.hpp"
#include "core/rr.hpp"
#include "ds/window_policy.hpp"
#include "ds/window_tuner.hpp"
#include "kv/contention.hpp"
#include "reclaim/gauge.hpp"
#include "sched/schedpoint.hpp"
#include "tm/tm.hpp"
#include "util/cacheline.hpp"
#include "util/random.hpp"
#include "util/thread_registry.hpp"
#include "util/trace.hpp"

namespace hohtm::kv {

/// Request opcodes shared by Store telemetry, Service, and the trace
/// taxonomy (util::Ev::kKvOpStart carries the index). kBatch carries a
/// pipelined group of ops through the Service ring in one request;
/// kStats asks for a Service::stats_snapshot() (both PR 10, the serving
/// tier — see docs/SERVING.md).
enum class OpCode : std::uint8_t {
  kGet = 0,
  kPut,
  kDel,
  kScan,
  kStop,
  kBatch,
  kStats,
};

/// One operation inside a pipelined batch (an OpCode::kBatch request).
/// The serving tier decodes a pipeline read into an array of these; the
/// Service worker hands contiguous runs to Store::run_batch, which fuses
/// consecutive same-shard ops into one window transaction. Result fields
/// are written by the executor and read back by the submitter after the
/// batch's Completion signals.
struct BatchOp {
  OpCode op = OpCode::kGet;
  std::string key;
  std::string value;       // kPut payload
  std::uint32_t scan_limit = 0;
  // Results:
  bool hit = false;        // get/del: key was present; put: newly inserted
  std::string out;         // get: value copy; stats: JSON snapshot
  std::uint32_t scan_count = 0;
};

/// Batching-efficiency telemetry accumulated by Store::run_batch.
struct BatchCounters {
  std::uint64_t fused_ops = 0;   // ops committed inside a 2+-op fused group
  std::uint64_t batch_txs = 0;   // fused group transactions committed
};

namespace detail {

/// Chain node: header plus a tail of key bytes then value bytes in one
/// pool block (alloc::create_flex). Everything but `next` is immutable
/// after the node is published by a committed chain-pointer write, so
/// readers may copy key/value bytes with plain loads: the publishing
/// commit happens-before any validated read of the pointer, and the
/// quiescence fence keeps the block alive for every transaction that
/// could have observed it (docs/KV.md, "why plain payload reads are
/// safe").
struct Node {
  Node* next;
  std::uint64_t hash;
  std::uint32_t klen;
  std::uint32_t vlen;

  Node(Node* n, std::uint64_t h, std::uint32_t kl, std::uint32_t vl) noexcept
      : next(n), hash(h), klen(kl), vlen(vl) {}

  const char* bytes() const noexcept {
    return reinterpret_cast<const char*>(this + 1);
  }
  char* bytes() noexcept { return reinterpret_cast<char*>(this + 1); }
  std::string_view key() const noexcept { return {bytes(), klen}; }
  std::string_view value() const noexcept { return {bytes() + klen, vlen}; }
};

/// Bucket-slot table: header plus 2^log2 chain-head slots in one pool
/// block. `log2` is immutable; the slots are transactional words.
struct Table {
  std::uint64_t log2;
  explicit Table(std::uint64_t l) noexcept : log2(l) {}
  std::size_t buckets() const noexcept { return std::size_t{1} << log2; }
  Node** slots() noexcept { return reinterpret_cast<Node**>(this + 1); }
};

/// Tag stamped into a fully migrated old-table slot (never dereferenced;
/// distinct from nullptr so an *empty but unmigrated* bucket still gets
/// migrated exactly once and decrements the remaining-bucket count).
inline Node* moved_tag() noexcept {
  alignas(16) static char tag;
  return reinterpret_cast<Node*>(&tag);
}

/// 64-bit FNV-1a over the key bytes, finalized with splitmix64 so the
/// top bits (which route shards and buckets) are well mixed.
inline std::uint64_t hash_bytes(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return util::splitmix64(h);
}

/// Chain order: by hash, ties broken lexicographically by key. Chains
/// sorted this way split in place on a grow — an old bucket's chain is
/// the concatenation of its two child buckets' chains, because the child
/// index is the next hash bit below the old bucket index.
inline bool precedes(std::uint64_t ha, std::string_view ka, std::uint64_t hb,
                     std::string_view kb) noexcept {
  if (ha != hb) return ha < hb;
  return ka < kb;
}

/// Bucket of `h` in a table of 2^log2 buckets, after the top
/// `log2_shards` bits routed the shard.
inline std::size_t bucket_index(std::uint64_t h, std::uint64_t log2,
                                std::size_t log2_shards) noexcept {
  if (log2 == 0) return 0;
  return static_cast<std::size_t>((h << log2_shards) >> (64 - log2));
}

/// Migration-anchor handover (docs/KV.md). At a window boundary the
/// migrator has just linked `anchor` into the NEW table's chain; parking
/// hands the reservation from the old-table chain to the new-table one,
/// so the next window resumes its sorted insertion scan from the anchor
/// instead of the bucket head. A concurrent delete of the anchor revokes
/// it, Get returns nil, and the migrator restarts from the head — the
/// same discipline as the Listing-5 traversal.
///
/// The kDropMigrationReserve mutant skips the reserve and resumes
/// through a raw cached pointer: exactly the stale-resume bug the
/// reservation prevents. tests/sched/sched_kv_test.cpp proves the
/// schedule explorer catches it.
///
/// Thin wrappers over ds::WindowBoundary (the one policy object every
/// HOH boundary speaks), kept so sched scenarios can mirror the store's
/// calls verbatim.
template <class RR, class Tx>
void park_anchor(RR& rr, Tx& tx, rr::Ref anchor, rr::Ref& raw_cache) {
  ds::WindowBoundary<RR>(rr).park_anchor(tx, anchor, raw_cache);
}

template <class RR, class Tx>
rr::Ref resume_anchor(RR& rr, Tx& tx, rr::Ref raw_cache) {
  return ds::WindowBoundary<RR>(rr).resume_anchor(tx, raw_cache);
}

/// Scan-cursor handover (docs/KV.md, "Range scans"). At a scan's window
/// boundary the last node the window *walked past* is parked in the
/// reservation; the next window resumes mid-chain from it instead of
/// reseeking the bucket. A concurrent delete of the cursor node revokes
/// it, Get returns nil, and the scan reseeks from its remembered
/// (hash, key) position — never from scratch.
///
/// The kDropScanCursorHandover mutant skips the reserve and resumes
/// through a raw cached pointer: the stale-resume bug the reservation
/// prevents. tests/sched/sched_scan_test.cpp proves the schedule
/// explorer catches it.
///
/// Thin wrappers over ds::WindowBoundary, kept so sched scenarios can
/// mirror the store's calls verbatim.
template <class RR, class Tx>
void park_scan_cursor(RR& rr, Tx& tx, rr::Ref cursor, rr::Ref& raw_cache) {
  ds::WindowBoundary<RR>(rr).park_cursor(tx, cursor, raw_cache);
}

template <class RR, class Tx>
rr::Ref resume_scan_cursor(RR& rr, Tx& tx, rr::Ref raw_cache) {
  return ds::WindowBoundary<RR>(rr).resume_cursor(tx, raw_cache);
}

}  // namespace detail

/// Sharded, incrementally resizable transactional hash map with
/// hand-over-hand bucket-chain traversal and precise reclamation.
///
///  - The top `log2_shards` hash bits pick a shard; each shard owns a
///    bucket-slot table (and, mid-resize, the previous one). Chains are
///    sorted by (hash, key) and traversed with the Listing-5 window
///    protocol: at most `window` nodes per transaction, the boundary
///    node parked in the shared reservation, resumed via Get.
///  - Deletes (and overwrites, which replace the node so values stay
///    immutable in place) unlink, revoke, and `tx.dealloc` the node in
///    one transaction: the store's footprint is exactly its occupancy.
///  - A grow installs a double-size table and keeps the old one; every
///    operation first migrates its key's old bucket (a window's worth of
///    nodes per transaction, the insertion anchor handed over through
///    the reservation), and optionally helps migrate one extra bucket.
///    The transaction that empties the last old bucket frees the old
///    table with `tx.dealloc` — precise, no epoch grace period.
///
/// Works with every TM backend x RR variant, like the src/ds/
/// structures; RrNull + kUnbounded window expresses the
/// one-big-transaction baseline.
template <class TM, class RR>
class Store {
 public:
  using Tx = typename TM::Tx;
  static constexpr int kUnbounded = std::numeric_limits<int>::max();

  struct Options {
    std::size_t log2_shards = 2;        // shard count = 2^n
    std::size_t log2_buckets = 2;       // initial buckets per shard
    std::size_t max_log2_buckets = 20;  // per-shard growth cap
    int window = 16;                    // HOH window, nodes per transaction
    int grow_chain = 8;                 // insert-observed chain length that
                                        // triggers a grow
    bool auto_migrate = true;           // ops help migrate one extra bucket
    int fusion_cap = 0;                 // per-op window-fusion budget behind
                                        // the tuner's contention gate; 0 = off
  };

  template <class... RrArgs>
  explicit Store(Options opt = Options{}, RrArgs&&... rr_args)
      : opt_(opt),
        shard_count_(std::size_t{1} << opt.log2_shards),
        shards_(std::make_unique<util::CachePadded<Shard>[]>(shard_count_)),
        reservation_(std::forward<RrArgs>(rr_args)...) {
    for (std::size_t s = 0; s < shard_count_; ++s)
      shards_[s].value.cur = make_table(opt_.log2_buckets);
    // Fixed window, so the tuner acts purely as the per-thread fusion
    // governor: quiet threads earn a budget, contended ones lose it.
    if (opt_.fusion_cap > 0)
      fusion_gate_ = std::make_unique<ds::WindowTuner>(
          opt_.window, opt_.window, opt_.fusion_cap);
  }

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  ~Store() {
    for (std::size_t s = 0; s < shard_count_; ++s) {
      destroy_table(shards_[s].value.old);
      destroy_table(shards_[s].value.cur);
    }
  }

  /// Insert or overwrite; true if the key was newly inserted.
  bool put(std::string_view key, std::string_view value) {
    util::trace_event(util::Ev::kKvOpStart,
                      static_cast<std::uint64_t>(OpCode::kPut));
    const std::uint64_t h = detail::hash_bytes(key);
    Shard& sh = shard_of(h);
    std::size_t chain_len = 0;
    const bool inserted = with_chain(
        sh, h, key, chain_len,
        [&](Tx& tx, detail::Node** link, detail::Node* curr) {
          // Overwrite replaces the node (values are immutable in place,
          // so readers copying bytes never race an update) and frees the
          // old one precisely, revoking any reservation parked on it.
          rr::SiteScope site(tm::RevokeSite::kKvReplace);
          detail::Node* fresh =
              make_node(tx, h, key, value, tx.read(curr->next));
          tx.write(*link, fresh);
          reservation_.revoke(tx, curr);
          tx.dealloc(curr);
          return false;
        },
        [&](Tx& tx, detail::Node** link, detail::Node* curr) {
          detail::Node* fresh = make_node(tx, h, key, value, curr);
          tx.write(*link, fresh);
          return true;
        });
    if (!inserted)  // replace: the old node was revoked out from under
                    // any parked traversal — contention heat
      ContentionMap::note(static_cast<std::uint32_t>(shard_index(h)),
                          ContentionMap::cell_of(h, opt_.log2_shards),
                          ContentionMap::kRevokeWeight);
    if (inserted && chain_len >= static_cast<std::size_t>(opt_.grow_chain))
      try_grow(sh);
    after_op(sh, OpCode::kPut);
    return inserted;
  }

  /// Copy the value out; false if the key is absent.
  bool get(std::string_view key, std::string& value_out) {
    util::trace_event(util::Ev::kKvOpStart,
                      static_cast<std::uint64_t>(OpCode::kGet));
    const std::uint64_t h = detail::hash_bytes(key);
    Shard& sh = shard_of(h);
    std::size_t chain_len = 0;
    const bool found = with_chain(
        sh, h, key, chain_len,
        [&](Tx&, detail::Node**, detail::Node* curr) {
          const std::string_view v = curr->value();
          value_out.assign(v.data(), v.size());
          return true;
        },
        [](Tx&, detail::Node**, detail::Node*) { return false; });
    after_op(sh, OpCode::kGet);
    return found;
  }

  /// Unlink, revoke, and free the node in one transaction; false if the
  /// key is absent.
  bool del(std::string_view key) {
    util::trace_event(util::Ev::kKvOpStart,
                      static_cast<std::uint64_t>(OpCode::kDel));
    const std::uint64_t h = detail::hash_bytes(key);
    Shard& sh = shard_of(h);
    std::size_t chain_len = 0;
    const bool removed = with_chain(
        sh, h, key, chain_len,
        [&](Tx& tx, detail::Node** link, detail::Node* curr) {
          rr::SiteScope site(tm::RevokeSite::kKvDelete);
          tx.write(*link, tx.read(curr->next));
          reservation_.revoke(tx, curr);
          tx.dealloc(curr);
          return true;
        },
        [](Tx&, detail::Node**, detail::Node*) { return false; });
    if (removed)
      ContentionMap::note(static_cast<std::uint32_t>(shard_index(h)),
                          ContentionMap::cell_of(h, opt_.log2_shards),
                          ContentionMap::kRevokeWeight);
    after_op(sh, OpCode::kDel);
    return removed;
  }

  /// Visit up to `limit` entries in canonical (hash, key) order — a
  /// deterministic total order over all keys, globally ascending across
  /// shard and bucket boundaries — starting at `start_key`'s position
  /// (inclusive when present). Returns the visit count. The traversal is
  /// multi-window: each transaction walks at most `Options::window`
  /// nodes and parks the boundary node as a *scan cursor* in the
  /// reservation (detail::park_scan_cursor); on revocation the scan
  /// reseeks from its remembered (hash, key) position, never from
  /// scratch. `fn(key, value)` runs outside any transaction, once per
  /// entry, and may re-enter the store (docs/KV.md, "Range scans").
  template <class F>
  std::size_t scan_from(std::string_view start_key, std::size_t limit,
                        F&& fn) {
    return scan_impl(false, start_key, limit, std::forward<F>(fn));
  }

  /// Whole-store scan from the beginning of canonical order.
  template <class F>
  std::size_t scan(std::size_t limit, F&& fn) {
    return scan_impl(true, std::string_view{}, limit, std::forward<F>(fn));
  }

  /// Shard that owns `key` — the serving tier's grouping key: consecutive
  /// pipeline ops with equal shard_of_key can fuse into one transaction.
  std::size_t shard_of_key(std::string_view key) const noexcept {
    return shard_index(detail::hash_bytes(key));
  }

  /// Execute a pipelined batch in order, fusing runs of consecutive
  /// same-shard keyed ops (get/put/del) into single window transactions
  /// under the tuner's fusion budget (docs/SERVING.md, "Batch-boundary
  /// fusion"). A fused group of k ops pays one commit — and, when it
  /// frees nodes, one quiescence fence — instead of k. Scans execute
  /// unfused via their own multi-window machinery; result fields are
  /// written into each BatchOp. Ops that cannot fuse (budget drained,
  /// window overflow, racing grow, fusion disabled) fall back to the
  /// ordinary one-op-per-window path, so semantics match issuing the
  /// ops back to back.
  void run_batch(BatchOp* ops, std::size_t n, BatchCounters& bc) {
    const auto keyed = [](OpCode op) {
      return op == OpCode::kGet || op == OpCode::kPut || op == OpCode::kDel;
    };
    std::size_t i = 0;
    while (i < n) {
      BatchOp& op = ops[i];
      if (op.op == OpCode::kScan) {
        op.scan_count = static_cast<std::uint32_t>(scan_from(
            op.key, op.scan_limit, [](std::string_view, std::string_view) {}));
        op.hit = op.scan_count > 0;
        ++i;
        continue;
      }
      if (!keyed(op.op)) {  // kStats handled by the Service worker
        ++i;
        continue;
      }
      const std::size_t sh = shard_of_key(op.key);
      std::size_t j = i + 1;
      while (j < n && keyed(ops[j].op) && shard_of_key(ops[j].key) == sh) ++j;
      if (j - i == 1 || fusion_gate_ == nullptr) {
        run_single(ops[i]);
        ++i;
      } else {
        i = run_fused_group(shards_[sh].value, sh, ops, i, j, bc);
      }
    }
  }

  /// Number of entries; one transaction per shard (diagnostic use).
  std::size_t size() {
    std::size_t total = 0;
    for (std::size_t s = 0; s < shard_count_; ++s) {
      Shard& sh = shards_[s].value;
      total += TM::atomically([&](Tx& tx) -> std::size_t {
        return count_table(tx, tx.read(sh.old)) +
               count_table(tx, tx.read(sh.cur));
      });
    }
    return total;
  }

  /// Structural invariants, one transaction per shard: chains strictly
  /// sorted and correctly homed, each key in exactly one chain, and the
  /// old table's remaining-bucket count matching its unmigrated slots.
  bool is_consistent() {
    for (std::size_t s = 0; s < shard_count_; ++s) {
      Shard& sh = shards_[s].value;
      std::set<std::pair<std::uint64_t, std::string>> seen;
      const bool ok = TM::atomically([&](Tx& tx) -> bool {
        seen.clear();
        detail::Table* cur = tx.read(sh.cur);
        detail::Table* old = tx.read(sh.old);
        if (!check_table(tx, cur, s, false, seen)) return false;
        if (old != nullptr) {
          if (!check_table(tx, old, s, true, seen)) return false;
          std::uint64_t unmigrated = 0;
          for (std::size_t b = 0; b < old->buckets(); ++b)
            if (tx.read(old->slots()[b]) != detail::moved_tag())
              ++unmigrated;
          if (unmigrated != tx.read(sh.old_left)) return false;
        }
        return true;
      });
      if (!ok) return false;
    }
    return true;
  }

  /// Drive every shard's migration to completion (old tables freed).
  /// Test/bench helper: lets precise-free assertions run without sleeps.
  void finish_migration() {
    for (std::size_t s = 0; s < shard_count_; ++s) {
      Shard& sh = shards_[s].value;
      for (;;) {
        const std::size_t buckets = TM::atomically([&](Tx& tx) -> std::size_t {
          detail::Table* old = tx.read(sh.old);
          return old == nullptr ? 0 : old->buckets();
        });
        if (buckets == 0) break;
        for (std::size_t b = 0; b < buckets; ++b) {
          MigrationCursor cursor;
          while (!migrate_window(sh, Pick::kByIndex, b, cursor)) {
          }
        }
      }
    }
  }

  /// Run exactly one migration window on the shard and bucket owning
  /// `key` (sched-scenario hook; ops normally migrate implicitly).
  /// Returns true when that bucket needs no further migration work.
  bool migrate_bucket_window_for(std::string_view key) {
    const std::uint64_t h = detail::hash_bytes(key);
    MigrationCursor cursor;
    return migrate_window(shard_of(h), Pick::kByHash, h, cursor);
  }

  /// Total buckets across the shards' current tables.
  std::size_t bucket_count() {
    std::size_t total = 0;
    for (std::size_t s = 0; s < shard_count_; ++s) {
      Shard& sh = shards_[s].value;
      total += TM::atomically(
          [&](Tx& tx) { return tx.read(sh.cur)->buckets(); });
    }
    return total;
  }

  /// True while any shard still holds an old table (mid-resize).
  bool migrating() {
    for (std::size_t s = 0; s < shard_count_; ++s) {
      Shard& sh = shards_[s].value;
      if (TM::atomically([&](Tx& tx) { return tx.read(sh.old) != nullptr; }))
        return true;
    }
    return false;
  }

  std::size_t shard_count() const noexcept { return shard_count_; }

  /// Gauge-counted objects the reservation algorithm owns (e.g. RR-FA and
  /// RR-DM allocate one per-thread node on first registration, freed only
  /// when the store dies). Lets tests assert Gauge-exact accounting across
  /// every RR variant. Quiescent-only, like the destructor.
  std::size_t reservation_overhead() const noexcept {
    if constexpr (requires(const RR& r) { r.gauge_owned(); })
      return reservation_.gauge_owned();
    else
      return 0;
  }

  std::uint64_t migrated_buckets() const noexcept {
    return migrated_buckets_.load(std::memory_order_relaxed);
  }
  std::uint64_t tables_swapped() const noexcept {
    return tables_swapped_.load(std::memory_order_relaxed);
  }
  std::uint64_t tables_retired() const noexcept {
    return tables_retired_.load(std::memory_order_relaxed);
  }

  /// Scan telemetry: ops started, committed window transactions, and
  /// cursor resumes (a parked cursor was lost — revoked, reused by a
  /// visitor op, or invalidated by a grow — and the scan reseeked from
  /// its remembered position). Resumes stay zero for RrNull, where no
  /// reservation carries the cursor in the first place.
  std::uint64_t scans() const noexcept {
    return scans_.load(std::memory_order_relaxed);
  }
  std::uint64_t scan_windows() const noexcept {
    return scan_windows_.load(std::memory_order_relaxed);
  }
  std::uint64_t scan_resumes() const noexcept {
    return scan_resumes_.load(std::memory_order_relaxed);
  }

  static const char* reservation_name() noexcept { return RR::name(); }

  /// Test-only: invoked inside the mutating transaction right after the
  /// op's callback ran; throwing from it must roll the whole attempt
  /// back (exercised by the kv differential script).
  void set_fail_hook_for_testing(std::function<void()> hook) {
    fail_hook_ = std::move(hook);
  }

 private:
  struct Shard {
    detail::Table* cur = nullptr;      // transactional word
    detail::Table* old = nullptr;      // transactional word; null = settled
    std::uint64_t old_left = 0;        // transactional; unmigrated buckets
    std::atomic<std::uint64_t> hint{0};  // helper cursor, non-transactional
  };

  /// Outcome of one traversal window transaction.
  enum class Step : std::uint8_t { kFalse, kTrue, kHandover, kMigrate };

  /// How migrate_window selects its old-table bucket.
  enum class Pick : std::uint8_t { kByHash, kByIndex };

  /// Anchor-handover state carried across one bucket's migration windows.
  struct MigrationCursor {
    rr::Ref raw_cache = nullptr;   // kDropMigrationReserve mutant only
    std::uint64_t parked_log2 = 0;  // cur-table generation at the park
    bool parked = false;
  };

  std::size_t shard_index(std::uint64_t h) const noexcept {
    if (opt_.log2_shards == 0) return 0;
    return static_cast<std::size_t>(h >> (64 - opt_.log2_shards));
  }
  Shard& shard_of(std::uint64_t h) noexcept {
    return shards_[shard_index(h)].value;
  }

  detail::Table* make_table(std::uint64_t log2) {
    const std::size_t buckets = std::size_t{1} << log2;
    detail::Table* t = alloc::create_flex<detail::Table>(
        buckets * sizeof(detail::Node*), log2);
    std::memset(static_cast<void*>(t->slots()), 0,
                buckets * sizeof(detail::Node*));
    reclaim::Gauge::on_alloc();
    return t;
  }

  void destroy_table(detail::Table* t) noexcept {
    if (t == nullptr) return;
    for (std::size_t b = 0; b < t->buckets(); ++b) {
      detail::Node* n = t->slots()[b];
      if (n == detail::moved_tag()) continue;
      while (n != nullptr) {
        detail::Node* next = n->next;
        alloc::destroy(n);
        reclaim::Gauge::on_free();
        n = next;
      }
    }
    alloc::destroy(t);
    reclaim::Gauge::on_free();
  }

  detail::Node* make_node(Tx& tx, std::uint64_t h, std::string_view key,
                          std::string_view value, detail::Node* next) {
    detail::Node* n = tx.template alloc_flex<detail::Node>(
        key.size() + value.size(), next, h,
        static_cast<std::uint32_t>(key.size()),
        static_cast<std::uint32_t>(value.size()));
    if (!key.empty()) std::memcpy(n->bytes(), key.data(), key.size());
    if (!value.empty())
      std::memcpy(n->bytes() + key.size(), value.data(), value.size());
    return n;
  }

  /// The HOH traversal engine shared by get/put/del: migrate the key's
  /// bucket into the current table, then run Listing-5 windows over its
  /// chain. `on_found(tx, link, curr)` runs with *link == curr and
  /// curr matching the key; `on_not_found(tx, link, curr)` with curr the
  /// first node after the key's position (or null), so an insert links
  /// through `link`.
  template <class FFound, class FNotFound>
  bool with_chain(Shard& sh, std::uint64_t h, std::string_view key,
                  std::size_t& chain_len, FFound&& on_found,
                  FNotFound&& on_not_found) {
    const ds::WindowPlan plan = fusion_gate_
                                    ? fusion_gate_->plan_op()
                                    : ds::WindowPlan{opt_.window, 0};
    ds::FusionState fusion(plan.fusion_budget);
    struct Feedback {
      ds::WindowTuner* gate;
      ~Feedback() {
        if (gate != nullptr) gate->observe();
      }
    } feedback{fusion_gate_.get()};
    bool handed_over = false;
    std::uint64_t parked_log2 = 0;
    rr::Ref parked_ref = nullptr;  // what the last committed park reserved
    const std::uint32_t heat_shard =
        static_cast<std::uint32_t>(shard_index(h));
    const std::uint32_t heat_cell =
        ContentionMap::cell_of(h, opt_.log2_shards);
    for (;;) {
      migrate_for(sh, h);
      for (;;) {
        bool position_lost = false;
        rr::Ref lost = nullptr;
        std::size_t tx_seen = 0;
        const Step step = TM::atomically([&](Tx& tx) -> Step {
          fusion.on_attempt_start();
          tx_seen = 0;
          reservation_.register_thread(tx);
          detail::Table* old = tx.read(sh.old);
          if (old != nullptr &&
              tx.read(old->slots()[detail::bucket_index(
                  h, old->log2, opt_.log2_shards)]) != detail::moved_tag()) {
            // A fresh grow undid our migration: the key's bucket in the
            // (new) old table has nodes again. Restart the whole op.
            reservation_.release(tx);
            return Step::kMigrate;
          }
          detail::Table* cur = tx.read(sh.cur);
          const std::size_t b =
              detail::bucket_index(h, cur->log2, opt_.log2_shards);
          detail::Node** link = &cur->slots()[b];
          int used = 0;
          if (handed_over) {
            auto* parked = static_cast<detail::Node*>(
                const_cast<void*>(boundary_.resume(tx)));
            position_lost = parked == nullptr || cur->log2 != parked_log2;
            // Capture the lost ref here, before this attempt can park a
            // new node over parked_ref (attribution must name what was
            // actually revoked, not a later boundary).
            if (position_lost) lost = parked_ref;
            if (!position_lost) link = &parked->next;
          } else {
            used = initial_scatter();
          }
          detail::Node* curr = tx.read(*link);
          while (curr != nullptr &&
                 detail::precedes(curr->hash, curr->key(), h, key)) {
            if (used >= plan.window) {
              if (!fusion.try_fuse()) break;
              used = 0;  // boundary elided: a fresh window, same tx
            }
            link = &curr->next;
            curr = tx.read(*link);
            ++used;
            ++tx_seen;
          }
          if (curr != nullptr && curr->hash == h && curr->key() == key) {
            const bool result = on_found(tx, link, curr);
            if (fail_hook_) fail_hook_();
            reservation_.release(tx);
            return result ? Step::kTrue : Step::kFalse;
          }
          if (curr == nullptr ||
              !detail::precedes(curr->hash, curr->key(), h, key)) {
            const bool result = on_not_found(tx, link, curr);
            if (fail_hook_) fail_hook_();
            reservation_.release(tx);
            return result ? Step::kTrue : Step::kFalse;
          }
          // Window exhausted short of the key's position: hand over.
          boundary_.park(tx, curr);
          parked_ref = curr;
          parked_log2 = cur->log2;
          return Step::kHandover;
        });
        fusion.on_commit();
        chain_len += tx_seen;
        if (position_lost) {
          ds::WindowBoundary<RR>::note_position_lost(lost);
          ContentionMap::note(heat_shard, heat_cell,
                              ContentionMap::kPositionLostWeight);
        }
        if (step == Step::kTrue || step == Step::kFalse) {
          ContentionMap::note(heat_shard, heat_cell,
                              ContentionMap::kOpWeight);
          return step == Step::kTrue;
        }
        if (step == Step::kMigrate) {
          handed_over = false;
          chain_len = 0;
          break;
        }
        handed_over = true;  // Step::kHandover
      }
    }
  }

  /// One batch op through the ordinary one-window-per-tx path.
  void run_single(BatchOp& op) {
    switch (op.op) {
      case OpCode::kGet:
        op.hit = get(op.key, op.out);
        break;
      case OpCode::kPut:
        op.hit = put(op.key, op.value);
        break;
      case OpCode::kDel:
        op.hit = del(op.key);
        break;
      default:
        break;
    }
  }

  /// Commit a run of consecutive same-shard keyed ops [begin, end) as
  /// ONE fused transaction: each op past the first — and each mid-chain
  /// window overflow — consumes one unit of the tuner-granted fusion
  /// budget, exactly as if the per-op commit/begin boundary had been
  /// elided (ds::FusionState). Returns the index after the last op that
  /// executed; the caller re-dispatches the remainder (budget drained,
  /// window overflow, or a grow that raced the migration prologue).
  /// Aborted attempts rerun the whole group from `begin`, so the local
  /// result slots are re-written per attempt and consumed only up to
  /// `done`.
  std::size_t run_fused_group(Shard& sh, std::size_t shard, BatchOp* ops,
                              std::size_t begin, std::size_t end,
                              BatchCounters& bc) {
    const ds::WindowPlan plan = fusion_gate_->plan_op();
    ds::FusionState fusion(plan.fusion_budget);
    struct Feedback {
      ds::WindowTuner* gate;
      ~Feedback() {
        if (gate != nullptr) gate->observe();
      }
    } feedback{fusion_gate_.get()};
    const std::size_t len = end - begin;
    std::vector<std::uint64_t> hashes(len);
    for (std::size_t k = 0; k < len; ++k)
      hashes[k] = detail::hash_bytes(ops[begin + k].key);
    // Migrate every member's old bucket up front so the common case
    // commits without tripping the in-transaction check below.
    for (std::size_t k = 0; k < len; ++k) migrate_for(sh, hashes[k]);
    struct OpResult {
      bool hit = false;
      bool inserted = false;
      std::size_t walked = 0;
      std::string out;
    };
    std::vector<OpResult> res(len);
    std::size_t done = begin;
    TM::atomically([&](Tx& tx) {
      fusion.on_attempt_start();
      done = begin;
      reservation_.register_thread(tx);
      detail::Table* old = tx.read(sh.old);
      detail::Table* cur = tx.read(sh.cur);
      int used = initial_scatter();
      for (std::size_t k = begin; k < end; ++k) {
        const std::uint64_t h = hashes[k - begin];
        if (old != nullptr &&
            tx.read(old->slots()[detail::bucket_index(
                h, old->log2, opt_.log2_shards)]) != detail::moved_tag())
          break;  // a grow raced the prologue: leave the rest to run_batch
        if (k > begin) {
          if (!fusion.try_fuse()) break;
          used = 0;  // the elided per-op boundary: a fresh window, same tx
        }
        OpResult& r = res[k - begin];
        r = OpResult{};
        BatchOp& o = ops[k];
        detail::Node** link = &cur->slots()[detail::bucket_index(
            h, cur->log2, opt_.log2_shards)];
        detail::Node* curr = tx.read(*link);
        bool overflow = false;
        while (curr != nullptr &&
               detail::precedes(curr->hash, curr->key(), h, o.key)) {
          if (used >= plan.window) {
            if (!fusion.try_fuse()) {
              overflow = true;
              break;
            }
            used = 0;
          }
          link = &curr->next;
          curr = tx.read(*link);
          ++used;
          ++r.walked;
        }
        if (overflow) break;
        const bool found =
            curr != nullptr && curr->hash == h && curr->key() == o.key;
        switch (o.op) {
          case OpCode::kGet:
            if (found) {
              const std::string_view v = curr->value();
              r.out.assign(v.data(), v.size());
              r.hit = true;
            }
            break;
          case OpCode::kPut:
            if (found) {
              // Same replace discipline as put(): new node in, old node
              // revoked and freed in this very transaction.
              rr::SiteScope site(tm::RevokeSite::kKvReplace);
              detail::Node* fresh =
                  make_node(tx, h, o.key, o.value, tx.read(curr->next));
              tx.write(*link, fresh);
              reservation_.revoke(tx, curr);
              tx.dealloc(curr);
            } else {
              detail::Node* fresh = make_node(tx, h, o.key, o.value, curr);
              tx.write(*link, fresh);
              r.hit = true;
              r.inserted = true;
            }
            break;
          case OpCode::kDel:
            if (found) {
              rr::SiteScope site(tm::RevokeSite::kKvDelete);
              tx.write(*link, tx.read(curr->next));
              reservation_.revoke(tx, curr);
              tx.dealloc(curr);
              r.hit = true;
            }
            break;
          default:
            break;
        }
        done = k + 1;
      }
      reservation_.release(tx);
    });
    fusion.on_commit();
    if (done == begin) {
      // Nothing executed (budget drained on the head op's own chain, or
      // its bucket needs migration): the normal path handles both.
      run_single(ops[begin]);
      return begin + 1;
    }
    bc.batch_txs += 1;
    if (done - begin >= 2) bc.fused_ops += done - begin;
    bool want_grow = false;
    for (std::size_t k = begin; k < done; ++k) {
      OpResult& r = res[k - begin];
      BatchOp& o = ops[k];
      o.hit = r.hit;
      o.out = std::move(r.out);
      util::trace_event(util::Ev::kKvOpStart,
                        static_cast<std::uint64_t>(o.op));
      const std::uint32_t cell =
          ContentionMap::cell_of(hashes[k - begin], opt_.log2_shards);
      ContentionMap::note(static_cast<std::uint32_t>(shard), cell,
                          ContentionMap::kOpWeight);
      const bool revoked = (o.op == OpCode::kPut && !r.hit) ||
                           (o.op == OpCode::kDel && r.hit);
      if (revoked)
        ContentionMap::note(static_cast<std::uint32_t>(shard), cell,
                            ContentionMap::kRevokeWeight);
      if (r.inserted &&
          r.walked >= static_cast<std::size_t>(opt_.grow_chain))
        want_grow = true;
      util::trace_event(util::Ev::kKvOpDone,
                        static_cast<std::uint64_t>(o.op));
    }
    if (want_grow) try_grow(sh);
    after_op(sh, OpCode::kBatch);  // one helper window for the whole group
    return done;
  }

  /// Drive migration of the old bucket holding `h` to completion (no-op
  /// when the shard is settled or the bucket already migrated).
  void migrate_for(Shard& sh, std::uint64_t h) {
    MigrationCursor cursor;
    while (!migrate_window(sh, Pick::kByHash, h, cursor)) {
    }
  }

  /// One migration window: pop up to `window` nodes from the front of
  /// the selected old-table bucket and sorted-insert them into the
  /// current table, resuming from the reservation-parked anchor. The
  /// window that empties the bucket stamps the moved tag; the one that
  /// empties the last bucket frees the old table precisely. Returns true
  /// when the selected bucket needs no further work.
  bool migrate_window(Shard& sh, Pick pick, std::uint64_t sel,
                      MigrationCursor& cursor) {
    bool bucket_done = false;
    bool table_freed = false;
    std::size_t done_bucket = 0;
    std::size_t freed_buckets = 0;
    const bool finished = TM::atomically([&](Tx& tx) -> bool {
      // Any revocation issued while relocating a chain is a migration
      // casualty for attribution purposes.
      rr::SiteScope site(tm::RevokeSite::kMigration);
      bucket_done = false;
      table_freed = false;
      reservation_.register_thread(tx);
      detail::Table* old = tx.read(sh.old);
      if (old == nullptr) {
        reservation_.release(tx);
        return true;
      }
      const std::size_t b =
          pick == Pick::kByHash
              ? detail::bucket_index(sel, old->log2, opt_.log2_shards)
              : static_cast<std::size_t>(sel) & (old->buckets() - 1);
      detail::Node*& oslot = old->slots()[b];
      detail::Node* rest = tx.read(oslot);
      if (rest == detail::moved_tag()) {
        reservation_.release(tx);
        return true;
      }
      detail::Table* cur = tx.read(sh.cur);
      detail::Node* anchor = nullptr;
      if (cursor.parked && cur->log2 == cursor.parked_log2)
        anchor = static_cast<detail::Node*>(const_cast<void*>(
            detail::resume_anchor(reservation_, tx, cursor.raw_cache)));
      int moved = 0;
      while (rest != nullptr && moved < opt_.window) {
        detail::Node* node = rest;
        rest = tx.read(node->next);
        const std::size_t nb =
            detail::bucket_index(node->hash, cur->log2, opt_.log2_shards);
        detail::Node** link;
        if (anchor != nullptr &&
            detail::bucket_index(anchor->hash, cur->log2,
                                 opt_.log2_shards) == nb &&
            !detail::precedes(node->hash, node->key(), anchor->hash,
                              anchor->key())) {
          link = &anchor->next;  // continue past the previous insertion
        } else {
          link = &cur->slots()[nb];
        }
        detail::Node* pos = tx.read(*link);
        while (pos != nullptr && detail::precedes(pos->hash, pos->key(),
                                                  node->hash, node->key())) {
          link = &pos->next;
          pos = tx.read(*link);
        }
        tx.write(node->next, pos);
        tx.write(*link, node);
        anchor = node;
        ++moved;
      }
      if (rest == nullptr) {
        tx.write(oslot, detail::moved_tag());
        const std::uint64_t left = tx.read(sh.old_left) - 1;
        tx.write(sh.old_left, left);
        bucket_done = true;
        done_bucket = b;
        if (left == 0) {
          // Last bucket: unpublish and free the old table in this same
          // transaction — the quiescence fence at commit makes the free
          // precise yet unobservable by in-flight readers.
          tx.write(sh.old, static_cast<detail::Table*>(nullptr));
          // Tables are never reservation targets (only nodes are parked
          // at window boundaries), so unpublishing sh.old is the whole
          // unlink protocol here — there is nothing to revoke.
          // hohtm-analyze: allow(unlink-without-revoke)
          tx.dealloc(old);
          table_freed = true;
          freed_buckets = old->buckets();
        }
        reservation_.release(tx);
        return true;
      }
      tx.write(oslot, rest);
      detail::park_anchor(reservation_, tx, anchor, cursor.raw_cache);
      cursor.parked_log2 = cur->log2;
      return false;
    });
    cursor.parked = !finished;
    if (finished) cursor.raw_cache = nullptr;
    if (bucket_done) {
      migrated_buckets_.fetch_add(1, std::memory_order_relaxed);
      util::trace_event(util::Ev::kKvMigrate, done_bucket);
    }
    if (table_freed) {
      tables_retired_.fetch_add(1, std::memory_order_relaxed);
      util::trace_event(util::Ev::kKvTableFree, freed_buckets);
    }
    return finished;
  }

  /// Install a double-size table if the shard is settled and under the
  /// cap. The old table stays reachable; migration is incremental.
  void try_grow(Shard& sh) {
    bool swapped = false;
    std::uint64_t new_log2 = 0;
    TM::atomically([&](Tx& tx) {
      swapped = false;
      if (tx.read(sh.old) != nullptr) return;  // already resizing
      detail::Table* cur = tx.read(sh.cur);
      if (cur->log2 >= opt_.max_log2_buckets) return;
      const std::size_t buckets = std::size_t{2} << cur->log2;
      detail::Table* fresh = tx.template alloc_flex<detail::Table>(
          buckets * sizeof(detail::Node*), cur->log2 + 1);
      // Private until this transaction commits (and freed by rollback if
      // it aborts), so plain stores initialize the slots.
      std::memset(static_cast<void*>(fresh->slots()), 0,
                  buckets * sizeof(detail::Node*));
      tx.write(sh.old, cur);
      tx.write(sh.cur, fresh);
      tx.write(sh.old_left, static_cast<std::uint64_t>(cur->buckets()));
      swapped = true;
      new_log2 = cur->log2 + 1;
    });
    if (swapped) {
      tables_swapped_.fetch_add(1, std::memory_order_relaxed);
      util::trace_event(util::Ev::kKvTableSwap, new_log2);
    }
  }

  /// Post-op bookkeeping: help migrate one extra bucket (round-robin
  /// cursor) so resizes finish even when the workload never touches some
  /// buckets, then trace the op completion.
  void after_op(Shard& sh, OpCode op) {
    if (opt_.auto_migrate) {
      const std::uint64_t idx =
          sh.hint.fetch_add(1, std::memory_order_relaxed);
      MigrationCursor cursor;
      migrate_window(sh, Pick::kByIndex, idx, cursor);
    }
    util::trace_event(util::Ev::kKvOpDone, static_cast<std::uint64_t>(op));
  }

  /// Outcome of one scan window transaction.
  enum class ScanStep : std::uint8_t {
    kHandover,   // window exhausted; cursor node parked in the reservation
    kMigrate,    // an unmigrated old bucket blocks the walk; go migrate it
    kLimit,      // the visit limit was reached
    kShardDone,  // walked past the shard's last bucket
  };

  /// Smallest hash routed to bucket `b` of a `log2`-bucket table in
  /// `shard` — the representative used to locate that bucket's parent in
  /// the old table (and, with b == 0, a shard's first position).
  std::uint64_t rep_hash(std::size_t shard, std::size_t b,
                         std::uint64_t log2) const noexcept {
    const std::size_t ls = opt_.log2_shards;
    std::uint64_t h = 0;
    if (ls > 0) h |= static_cast<std::uint64_t>(shard) << (64 - ls);
    if (log2 > 0) h |= static_cast<std::uint64_t>(b) << (64 - ls - log2);
    return h;
  }

  /// Multi-window range scan (docs/KV.md, "Range scans"). Because the
  /// bucket index is the hash bits immediately below the shard bits,
  /// shard-major -> bucket-major -> chain order is one globally
  /// ascending (hash, key) order: the sorted-shard variant of ROADMAP
  /// item 2, with no extra index to maintain. Each window transaction
  /// emits at most `Options::window` entries (nodes skipped while
  /// re-walking toward the cursor are grow-policy-bounded and free);
  /// at the boundary the last emitted node is parked in the reservation
  /// (detail::park_scan_cursor)
  /// and the next window resumes mid-chain from it. A resume is honored
  /// only if the reservation still holds the very node this scan parked,
  /// the table generation is unchanged, and the node has not moved past
  /// the cursor — anything else (revoked cursor, a visitor op that
  /// reused the thread's reservation, a grow) reseeks from the
  /// remembered (hash, key) cursor position, never from scratch.
  template <class F>
  std::size_t scan_impl(bool from_start, std::string_view start_key,
                        std::size_t limit, F&& fn) {
    util::trace_event(util::Ev::kKvOpStart,
                      static_cast<std::uint64_t>(OpCode::kScan));
    scans_.fetch_add(1, std::memory_order_relaxed);
    if (limit == 0) {
      util::trace_event(util::Ev::kKvOpDone,
                        static_cast<std::uint64_t>(OpCode::kScan));
      return 0;
    }
    // The cursor: the last consumed (hash, key) position, exclusive once
    // anything was emitted. It survives revocation — only the *parked
    // node* is protected by the reservation; the position is plain data.
    std::uint64_t chash = from_start ? 0 : detail::hash_bytes(start_key);
    std::string ckey(from_start ? std::string_view{} : start_key);
    bool cinclusive = true;
    std::size_t shard = from_start ? 0 : shard_index(chash);
    const auto past_cursor = [&](std::uint64_t h, std::string_view k) {
      return cinclusive ? !detail::precedes(h, k, chash, ckey)
                        : detail::precedes(chash, ckey, h, k);
    };
    std::size_t visited = 0;
    std::vector<std::pair<std::string, std::string>> batch;
    bool handed_over = false;
    detail::Node* parked_raw = nullptr;  // what this scan's last park reserved
    std::uint64_t parked_log2 = 0;
    rr::Ref mutant_cache = nullptr;  // kDropScanCursorHandover mutant only
    while (shard < shard_count_) {
      Shard& sh = shards_[shard].value;
      bool position_lost = false;
      std::uint64_t need_hash = 0;
      detail::Node* new_parked = nullptr;
      std::uint64_t new_parked_log2 = 0;
      const ScanStep step = TM::atomically([&](Tx& tx) -> ScanStep {
        batch.clear();
        position_lost = false;
        reservation_.register_thread(tx);
        detail::Table* old = tx.read(sh.old);
        detail::Table* cur = tx.read(sh.cur);
        std::size_t b = 0;
        detail::Node** link = nullptr;
        bool resumed = false;
        if (handed_over) {
          auto* parked = static_cast<detail::Node*>(const_cast<void*>(
              detail::resume_scan_cursor(reservation_, tx, mutant_cache)));
          // Honor the resume only if the reservation still holds exactly
          // the node this scan parked (a visitor op on this thread may
          // have reused the slot for its own boundary or a migration
          // anchor), the table generation matches, and the node is still
          // at-or-before the cursor (a node at the same address but past
          // the cursor would skip entries).
          if (parked != nullptr && parked == parked_raw &&
              cur->log2 == parked_log2 && shard_index(parked->hash) == shard &&
              !past_cursor(parked->hash, parked->key())) {
            b = detail::bucket_index(parked->hash, cur->log2,
                                     opt_.log2_shards);
            link = &parked->next;
            resumed = true;
          } else {
            position_lost = true;
          }
        }
        if (!resumed) {
          // Reseek from the cursor position's bucket, after making sure
          // its old-table parent bucket is migrated (the chain walk must
          // see every entry of the bucket in the current table).
          if (old != nullptr &&
              tx.read(old->slots()[detail::bucket_index(
                  chash, old->log2, opt_.log2_shards)]) !=
                  detail::moved_tag()) {
            reservation_.release(tx);
            need_hash = chash;
            return ScanStep::kMigrate;
          }
          b = detail::bucket_index(chash, cur->log2, opt_.log2_shards);
          link = &cur->slots()[b];
        }
        int used = 0;
        for (;;) {
          detail::Node* curr = tx.read(*link);
          if (curr == nullptr) {
            if (++b >= cur->buckets()) {
              reservation_.release(tx);
              return ScanStep::kShardDone;
            }
            if (old != nullptr) {
              const std::uint64_t rep = rep_hash(shard, b, cur->log2);
              if (tx.read(old->slots()[detail::bucket_index(
                      rep, old->log2, opt_.log2_shards)]) !=
                  detail::moved_tag()) {
                reservation_.release(tx);
                need_hash = rep;
                return ScanStep::kMigrate;
              }
            }
            link = &cur->slots()[b];
            continue;
          }
          if (past_cursor(curr->hash, curr->key())) {
            if (visited + batch.size() >= limit) {
              reservation_.release(tx);
              return ScanStep::kLimit;
            }
            batch.emplace_back(std::string(curr->key()),
                               std::string(curr->value()));
            // Only *emitted* entries consume window budget. Nodes
            // skipped while re-walking toward the cursor (a reseek's
            // chain prefix, bounded by the grow policy like every keyed
            // op's traversal) must not: a window that spent its whole
            // budget on skips would park without advancing the
            // remembered position — with a nil-resuming reservation
            // (RrNull, or sustained revocation) that is a livelock.
            if (++used >= opt_.window) {
              // Window boundary: park the last emitted node as cursor.
              detail::park_scan_cursor(reservation_, tx, curr,
                                       mutant_cache);
              new_parked = curr;
              new_parked_log2 = cur->log2;
              return ScanStep::kHandover;
            }
          }
          link = &curr->next;
        }
      });
      scan_windows_.fetch_add(1, std::memory_order_relaxed);
      util::trace_event(util::Ev::kKvScanWindow, batch.size());
      if (position_lost) {
        if constexpr (RR::kReal) {
          // With a real reservation a lost cursor is contention (someone
          // revoked it, or this thread's own visitor reused the slot);
          // with RrNull nil is the steady state, not an event.
          scan_resumes_.fetch_add(1, std::memory_order_relaxed);
          util::trace_event(util::Ev::kKvScanResume);
          ds::WindowBoundary<RR>::note_position_lost(parked_raw);
          ContentionMap::note(static_cast<std::uint32_t>(shard),
                              ContentionMap::cell_of(chash, opt_.log2_shards),
                              ContentionMap::kPositionLostWeight);
        }
        handed_over = false;
        parked_raw = nullptr;
      }
      // Deliver outside the transaction, then advance the cursor to the
      // last emitted position; the visitor may re-enter the store (its
      // ops reuse this thread's reservation — the resume check above
      // keeps that safe).
      for (const auto& entry : batch) {
        fn(entry.first, entry.second);
        ++visited;
      }
      if (!batch.empty()) {
        ckey = batch.back().first;
        chash = detail::hash_bytes(ckey);
        cinclusive = false;
      }
      switch (step) {
        case ScanStep::kHandover:
          handed_over = true;
          parked_raw = new_parked;
          parked_log2 = new_parked_log2;
          break;
        case ScanStep::kMigrate: {
          handed_over = false;
          MigrationCursor cursor;
          while (!migrate_window(sh, Pick::kByHash, need_hash, cursor)) {
          }
          break;
        }
        case ScanStep::kLimit:
          util::trace_event(util::Ev::kKvOpDone,
                            static_cast<std::uint64_t>(OpCode::kScan));
          return visited;
        case ScanStep::kShardDone:
          handed_over = false;
          ++shard;
          if (shard < shard_count_) {
            chash = rep_hash(shard, 0, 0);
            ckey.clear();
            cinclusive = true;
          }
          break;
      }
    }
    util::trace_event(util::Ev::kKvOpDone,
                      static_cast<std::uint64_t>(OpCode::kScan));
    return visited;
  }

  std::size_t count_table(Tx& tx, detail::Table* t) {
    if (t == nullptr) return 0;
    std::size_t n = 0;
    for (std::size_t b = 0; b < t->buckets(); ++b) {
      detail::Node* head = tx.read(t->slots()[b]);
      if (head == detail::moved_tag()) continue;
      for (; head != nullptr; head = tx.read(head->next)) ++n;
    }
    return n;
  }

  bool check_table(Tx& tx, detail::Table* t, std::size_t shard, bool is_old,
                   std::set<std::pair<std::uint64_t, std::string>>& seen) {
    for (std::size_t b = 0; b < t->buckets(); ++b) {
      detail::Node* n = tx.read(t->slots()[b]);
      if (n == detail::moved_tag()) {
        if (!is_old) return false;  // the tag belongs to old tables only
        continue;
      }
      const detail::Node* prev = nullptr;
      for (; n != nullptr; n = tx.read(n->next)) {
        if (shard_index(n->hash) != shard) return false;
        if (detail::bucket_index(n->hash, t->log2, opt_.log2_shards) != b)
          return false;
        if (prev != nullptr &&
            !detail::precedes(prev->hash, prev->key(), n->hash, n->key()))
          return false;
        if (!seen.emplace(n->hash, std::string(n->key())).second)
          return false;  // key present in two chains
        prev = n;
      }
    }
    return true;
  }

  int initial_scatter() {
    if (opt_.window <= 1 || opt_.window == kUnbounded) return 0;
    thread_local util::Xoshiro256 rng(
        util::ThreadRegistry::generation() * 0x9E3779B97F4A7C15ULL + 17);
    return static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(opt_.window)));
  }

  Options opt_;
  std::size_t shard_count_;
  std::unique_ptr<util::CachePadded<Shard>[]> shards_;
  RR reservation_;
  ds::WindowBoundary<RR> boundary_{reservation_};
  std::unique_ptr<ds::WindowTuner> fusion_gate_;
  std::function<void()> fail_hook_;
  std::atomic<std::uint64_t> migrated_buckets_{0};
  std::atomic<std::uint64_t> tables_swapped_{0};
  std::atomic<std::uint64_t> tables_retired_{0};
  std::atomic<std::uint64_t> scans_{0};
  std::atomic<std::uint64_t> scan_windows_{0};
  std::atomic<std::uint64_t> scan_resumes_{0};
};

}  // namespace hohtm::kv
