#include "kv/contention.hpp"

#include <algorithm>
#include <map>

namespace hohtm::kv {

void ContentionMap::note(std::uint32_t shard, std::uint32_t cell,
                         std::uint64_t weight) noexcept {
  Sketch& mine = sketches_[util::ThreadRegistry::slot()].value;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(shard) << 32) | cell;
  std::size_t min_at = 0;
  std::uint64_t min_count = ~std::uint64_t{0};
  for (std::size_t i = 0; i < kEntries; ++i) {
    const std::uint64_t count = mine.count[i].load(std::memory_order_relaxed);
    if (count != 0 && mine.key[i].load(std::memory_order_relaxed) == key) {
      mine.count[i].store(count + weight, std::memory_order_relaxed);
      return;
    }
    if (count < min_count) {
      min_count = count;
      min_at = i;
    }
  }
  // Space-saving replacement: the newcomer inherits the evicted minimum,
  // keeping every stored count an upper bound on the true weight. Key is
  // published before the count so a concurrent top() pairing the new count
  // with the old key can only overstate an already-evicted cell.
  mine.key[min_at].store(key, std::memory_order_relaxed);
  mine.count[min_at].store(min_count + weight, std::memory_order_release);
}

std::vector<ContentionMap::Hot> ContentionMap::top(std::size_t k) {
  std::map<std::uint64_t, std::uint64_t> merged;
  const std::size_t n = util::ThreadRegistry::high_watermark();
  for (std::size_t t = 0; t < n; ++t) {
    const Sketch& sketch = sketches_[t].value;
    for (std::size_t i = 0; i < kEntries; ++i) {
      const std::uint64_t count =
          sketch.count[i].load(std::memory_order_acquire);
      if (count == 0) continue;
      merged[sketch.key[i].load(std::memory_order_relaxed)] += count;
    }
  }
  std::vector<Hot> hot;
  hot.reserve(merged.size());
  for (const auto& [key, weight] : merged)
    hot.push_back(Hot{static_cast<std::uint32_t>(key >> 32),
                      static_cast<std::uint32_t>(key & 0xFFFFFFFFu), weight});
  std::sort(hot.begin(), hot.end(), [](const Hot& a, const Hot& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.cell < b.cell;
  });
  if (hot.size() > k) hot.resize(k);
  return hot;
}

void ContentionMap::write_json(std::FILE* out) {
  const std::vector<Hot> hot = top(8);
  std::fputc('[', out);
  for (std::size_t i = 0; i < hot.size(); ++i) {
    std::fprintf(out, "%s{\"shard\":%u,\"cell\":%u,\"weight\":%llu}",
                 i == 0 ? "" : ",", hot[i].shard, hot[i].cell,
                 static_cast<unsigned long long>(hot[i].weight));
  }
  std::fputc(']', out);
}

void ContentionMap::reset() noexcept {
  for (auto& padded : sketches_) {
    for (std::size_t i = 0; i < kEntries; ++i) {
      padded.value.key[i].store(0, std::memory_order_relaxed);
      padded.value.count[i].store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace hohtm::kv
