#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::kv {

/// Always-on contention heatmap for the sharded kv store.
///
/// Every store operation notes its (shard, cell) with weight 1; contention
/// events add extra weight (a lost reservation position is worth more than
/// a plain revoke, which is worth more than an uncontended op — see the
/// k* weights). Cells are *fixed-granularity hash prefixes*, not physical
/// bucket indices: a bucket index changes meaning on every incremental
/// resize, which would smear a hot key across cells mid-run, while the top
/// `kCellBits` post-shard hash bits name the same key range forever.
///
/// Per-thread state is a cache-line-padded space-saving sketch of
/// `kEntries` (cell, count) pairs — owner-only relaxed writes on the hot
/// path, so noting costs a short scan of the thread's own line(s) and no
/// RMW. `top()` merges every thread's sketch; like all space-saving
/// sketches the counts are upper bounds and concurrent snapshots are
/// approximate, which is fine for a heatmap.
class ContentionMap {
 public:
  static constexpr std::uint32_t kCellBits = 12;  // 4096 cells per shard
  static constexpr std::uint64_t kOpWeight = 1;
  static constexpr std::uint64_t kRevokeWeight = 4;
  static constexpr std::uint64_t kPositionLostWeight = 8;

  /// Heat cell of hash `h` after `log2_shards` bits routed the shard.
  static std::uint32_t cell_of(std::uint64_t h,
                               std::size_t log2_shards) noexcept {
    return static_cast<std::uint32_t>((h << log2_shards) >>
                                      (64 - kCellBits));
  }

  static void note(std::uint32_t shard, std::uint32_t cell,
                   std::uint64_t weight) noexcept;

  struct Hot {
    std::uint32_t shard;
    std::uint32_t cell;
    std::uint64_t weight;
  };

  /// Top-k hottest cells merged across every thread, weight-descending.
  static std::vector<Hot> top(std::size_t k);

  /// One JSON array of {"shard","cell","weight"} objects (top 8).
  static void write_json(std::FILE* out);

  /// Quiescent-only: forget everything.
  static void reset() noexcept;

 private:
  static constexpr std::size_t kEntries = 16;  // per-thread sketch width
  struct Sketch {
    std::atomic<std::uint64_t> key[kEntries];    // (shard << 32) | cell
    std::atomic<std::uint64_t> count[kEntries];  // 0 = slot empty
  };
  static inline util::CachePadded<Sketch> sketches_[util::kMaxThreads] = {};
};

}  // namespace hohtm::kv
