#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/metrics.hpp"
#include "kv/store.hpp"

namespace hohtm::kv {

/// Per-request result code reported through the Completion record.
enum class ResultCode : std::uint8_t {
  kOk = 0,      // the op did what it says (get hit, put applied, del hit)
  kNotFound,    // get/del on an absent key
  kStopped,     // service shut down before the request ran
};

/// Completion record a client hands in with its request and blocks on.
/// The worker fills the outputs, then publishes with one release store +
/// notify; wait() parks on the atomic (no sleeps, single-core friendly).
struct Completion {
  std::atomic<std::uint32_t> state{0};  // 0 = pending, 1 = done
  ResultCode rc = ResultCode::kStopped;
  std::string value;        // get: the value on kOk
  std::size_t scan_count = 0;  // scan: entries visited
  bool created = false;        // put: true if newly inserted
  /// scan with Request::collect: the visited (key, value) pairs in
  /// canonical scan order. The worker fills this before signalling, so
  /// the waiter owns it race-free once wait() returns.
  std::vector<std::pair<std::string, std::string>> entries;

  void wait() noexcept {
    while (state.load(std::memory_order_acquire) == 0) state.wait(0);
  }
  void signal(ResultCode code) noexcept {
    rc = code;
    state.store(1, std::memory_order_release);
    state.notify_all();
  }
  void reset() noexcept {
    state.store(0, std::memory_order_relaxed);
    rc = ResultCode::kStopped;
    value.clear();
    scan_count = 0;
    created = false;
    entries.clear();
  }
};

/// One submitted operation. kScan visits up to scan_limit entries
/// starting at `key`'s position and reports the count; set `collect`
/// to also copy the entries into the Completion (a streaming layer
/// would chunk them — collect keeps the record bounded by scan_limit).
struct Request {
  OpCode op = OpCode::kGet;
  std::string key;
  std::string value;
  std::size_t scan_limit = 0;
  Completion* done = nullptr;
  bool collect = false;
};

/// Bounded MPMC submission ring (Vyukov per-cell sequence numbers), with
/// atomic wait/notify instead of spinning when full or empty: producers
/// park on the cell their ticket maps to until the consumer recycles it,
/// and vice versa — no sleeps, no condition variables on the hot path.
class RequestRing {
 public:
  explicit RequestRing(std::size_t log2_capacity)
      : mask_((std::size_t{1} << log2_capacity) - 1),
        cells_(std::make_unique<Cell[]>(mask_ + 1)) {
    for (std::size_t i = 0; i <= mask_; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

  void push(Request req) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        // Ring full: this cell still holds an unconsumed request. Park
        // until the consumer bumps its sequence, then re-read the tail.
        cell.seq.wait(seq, std::memory_order_acquire);
        pos = tail_.load(std::memory_order_relaxed);
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    Cell& cell = cells_[pos & mask_];
    cell.req = std::move(req);
    cell.seq.store(pos + 1, std::memory_order_release);
    cell.seq.notify_all();
  }

  Request pop() {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq) -
                               static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        // Ring empty: park until a producer publishes into this cell.
        cell.seq.wait(seq, std::memory_order_acquire);
        pos = head_.load(std::memory_order_relaxed);
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    return take(pos);
  }

  /// Non-blocking pop for shutdown draining; false when the ring is
  /// empty (or the next cell is still being written by a producer).
  bool try_pop(Request& out) {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq) -
                               static_cast<std::int64_t>(pos + 1);
      if (dif < 0) return false;
      if (dif == 0 && head_.compare_exchange_weak(
                          pos, pos + 1, std::memory_order_relaxed)) {
        out = take(pos);
        return true;
      }
      pos = head_.load(std::memory_order_relaxed);
    }
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    Request req;
  };

  Request take(std::uint64_t pos) {
    Cell& cell = cells_[pos & mask_];
    Request req = std::move(cell.req);
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    cell.seq.notify_all();
    return req;
  }

  std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(util::kCacheLineSize) std::atomic<std::uint64_t> tail_{0};  // producers
  alignas(util::kCacheLineSize) std::atomic<std::uint64_t> head_{0};  // consumers
};

/// Request-serving front-end: clients submit Requests into the MPMC
/// ring; worker threads pop, run the op against the Store, and signal
/// the client's Completion. Shutdown drains: stop() enqueues one kStop
/// sentinel per worker, so every request submitted before stop() is
/// served, and requests still queued behind the sentinels complete with
/// kStopped rather than hanging their clients.
template <class TM, class RR>
class Service {
 public:
  using StoreType = Store<TM, RR>;

  struct Stats {
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    std::uint64_t dels = 0;
    std::uint64_t scans = 0;
  };

  Service(StoreType& store, std::size_t workers, std::size_t log2_queue = 6)
      : store_(store), ring_(log2_queue) {
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      workers_.emplace_back([this] { serve(); });
  }

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  ~Service() { stop(); }

  /// Enqueue a request. `req.done` must outlive the completion signal.
  /// Blocks while the ring is full; callable from any number of client
  /// threads.
  void submit(Request req) { ring_.push(std::move(req)); }

  /// Convenience synchronous client calls (one Completion on the stack).
  ResultCode get(std::string key, std::string& value_out) {
    Completion done;
    submit(Request{OpCode::kGet, std::move(key), {}, 0, &done});
    done.wait();
    if (done.rc == ResultCode::kOk) value_out = std::move(done.value);
    return done.rc;
  }

  ResultCode put(std::string key, std::string value, bool* created = nullptr) {
    Completion done;
    submit(Request{OpCode::kPut, std::move(key), std::move(value), 0, &done});
    done.wait();
    if (created != nullptr) *created = done.created;
    return done.rc;
  }

  ResultCode del(std::string key) {
    Completion done;
    submit(Request{OpCode::kDel, std::move(key), {}, 0, &done});
    done.wait();
    return done.rc;
  }

  ResultCode scan(std::string start_key, std::size_t limit,
                  std::size_t& count_out) {
    Completion done;
    submit(Request{OpCode::kScan, std::move(start_key), {}, limit, &done});
    done.wait();
    count_out = done.scan_count;
    return done.rc;
  }

  /// Entry-collecting scan: like scan(), but the visited (key, value)
  /// pairs land in `entries_out` in canonical scan order. The count is
  /// entries_out.size().
  ResultCode scan(std::string start_key, std::size_t limit,
                  std::vector<std::pair<std::string, std::string>>&
                      entries_out) {
    Completion done;
    submit(Request{OpCode::kScan, std::move(start_key), {}, limit, &done,
                   /*collect=*/true});
    done.wait();
    entries_out = std::move(done.entries);
    return done.rc;
  }

  /// Stop and join the workers. Idempotent; implied by the destructor.
  /// Every request submitted before stop() is served; anything a racing
  /// client queued behind the sentinels is answered kStopped so no
  /// waiter hangs. Submitting after stop() returns is unsupported.
  void stop() {
    if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
    for (std::size_t i = 0; i < workers_.size(); ++i)
      ring_.push(Request{OpCode::kStop, {}, {}, 0, nullptr});
    for (std::thread& w : workers_) w.join();
    Request leftover;
    while (ring_.try_pop(leftover))
      if (leftover.done != nullptr) leftover.done->signal(ResultCode::kStopped);
  }

  Stats stats() const noexcept {
    Stats total;
    for (const auto& s : worker_stats_) {
      total.gets += s.value.gets.load(std::memory_order_relaxed);
      total.puts += s.value.puts.load(std::memory_order_relaxed);
      total.dels += s.value.dels.load(std::memory_order_relaxed);
      total.scans += s.value.scans.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// One metrics-plane snapshot document (counters, gauges, abort
  /// attribution, contention heatmap, watchdog), prefixed with this
  /// service's own request counters. A serving layer exposes this as its
  /// stats endpoint; callable any time, from any thread.
  std::string stats_snapshot() const {
    const Stats s = stats();
    std::string doc = "{\"service\":{\"gets\":" + std::to_string(s.gets) +
                      ",\"puts\":" + std::to_string(s.puts) +
                      ",\"dels\":" + std::to_string(s.dels) +
                      ",\"scans\":" + std::to_string(s.scans) +
                      "},\"metrics\":";
    doc += harness::metrics_snapshot_json();
    doc += '}';
    return doc;
  }

 private:
  struct AtomicStats {
    std::atomic<std::uint64_t> gets{0};
    std::atomic<std::uint64_t> puts{0};
    std::atomic<std::uint64_t> dels{0};
    std::atomic<std::uint64_t> scans{0};
  };

  void serve() {
    const std::size_t me =
        worker_seq_.fetch_add(1, std::memory_order_relaxed) %
        util::kMaxThreads;
    AtomicStats& stats = worker_stats_[me].value;
    for (;;) {
      Request req = ring_.pop();
      if (req.op == OpCode::kStop) return;  // one sentinel per worker
      Completion* done = req.done;
      switch (req.op) {
        case OpCode::kGet: {
          stats.gets.fetch_add(1, std::memory_order_relaxed);
          std::string value;
          const bool hit = store_.get(req.key, value);
          if (done != nullptr) {
            done->value = std::move(value);
            done->signal(hit ? ResultCode::kOk : ResultCode::kNotFound);
          }
          break;
        }
        case OpCode::kPut: {
          stats.puts.fetch_add(1, std::memory_order_relaxed);
          const bool created = store_.put(req.key, req.value);
          if (done != nullptr) {
            done->created = created;
            done->signal(ResultCode::kOk);
          }
          break;
        }
        case OpCode::kDel: {
          stats.dels.fetch_add(1, std::memory_order_relaxed);
          const bool hit = store_.del(req.key);
          if (done != nullptr)
            done->signal(hit ? ResultCode::kOk : ResultCode::kNotFound);
          break;
        }
        case OpCode::kScan: {
          stats.scans.fetch_add(1, std::memory_order_relaxed);
          std::size_t n = 0;
          if (req.collect && done != nullptr) {
            done->entries.clear();
            n = store_.scan_from(
                req.key, req.scan_limit,
                [done](const std::string& k, const std::string& v) {
                  done->entries.emplace_back(k, v);
                });
          } else {
            n = store_.scan_from(
                req.key, req.scan_limit,
                [](const std::string&, const std::string&) {});
          }
          if (done != nullptr) {
            done->scan_count = n;
            done->signal(ResultCode::kOk);
          }
          break;
        }
        case OpCode::kStop:
          break;  // handled above
      }
    }
  }

  StoreType& store_;
  RequestRing ring_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
  std::atomic<std::size_t> worker_seq_{0};
  util::CachePadded<AtomicStats> worker_stats_[util::kMaxThreads];
};

}  // namespace hohtm::kv
