#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/metrics.hpp"
#include "kv/store.hpp"

namespace hohtm::kv {

/// Per-request result code reported through the Completion record.
enum class ResultCode : std::uint8_t {
  kOk = 0,      // the op did what it says (get hit, put applied, del hit)
  kNotFound,    // get/del on an absent key
  kStopped,     // service shut down before the request ran
  kShutdown,    // submit() rejected: stop() already began (fail-fast)
};

/// Completion record a client hands in with its request and blocks on.
/// The worker fills the outputs, then publishes with one release store +
/// notify; wait() parks on the atomic (no sleeps, single-core friendly).
struct Completion {
  std::atomic<std::uint32_t> state{0};  // 0 = pending, 1 = done
  ResultCode rc = ResultCode::kStopped;
  std::string value;        // get: the value on kOk
  std::size_t scan_count = 0;  // scan: entries visited
  bool created = false;        // put: true if newly inserted
  /// scan with Request::collect: the visited (key, value) pairs in
  /// canonical scan order. The worker fills this before signalling, so
  /// the waiter owns it race-free once wait() returns.
  std::vector<std::pair<std::string, std::string>> entries;
  /// kBatch: batching-efficiency counters from Store::run_batch (ops
  /// committed inside fused groups, fused group transactions).
  std::uint64_t fused_ops = 0;
  std::uint64_t batch_txs = 0;
  /// Optional post-signal hook for poll-style waiters (the net event
  /// loop's eventfd kick). Runs after the release store + notify, and
  /// must touch ONLY its argument: a concurrent wait()er may already
  /// have destroyed this Completion by the time the hook runs.
  void (*on_signal)(void*) = nullptr;
  void* on_signal_arg = nullptr;

  void wait() noexcept {
    while (state.load(std::memory_order_acquire) == 0) state.wait(0);
  }
  void signal(ResultCode code) noexcept {
    void (*hook)(void*) = on_signal;
    void* hook_arg = on_signal_arg;
    rc = code;
    state.store(1, std::memory_order_release);
    state.notify_all();
    if (hook != nullptr) hook(hook_arg);
  }
  void reset() noexcept {
    state.store(0, std::memory_order_relaxed);
    rc = ResultCode::kStopped;
    value.clear();
    scan_count = 0;
    created = false;
    entries.clear();
    fused_ops = 0;
    batch_txs = 0;
    on_signal = nullptr;
    on_signal_arg = nullptr;
  }
};

/// One submitted operation. kScan visits up to scan_limit entries
/// starting at `key`'s position and reports the count; set `collect`
/// to also copy the entries into the Completion (a streaming layer
/// would chunk them — collect keeps the record bounded by scan_limit).
struct Request {
  OpCode op = OpCode::kGet;
  std::string key;
  std::string value;
  std::size_t scan_limit = 0;
  Completion* done = nullptr;
  bool collect = false;
  /// kBatch: the pipelined ops, owned by the submitter and alive until
  /// `done` signals; the worker writes each op's result fields in place.
  BatchOp* batch = nullptr;
  std::uint32_t batch_len = 0;
};

/// Bounded MPMC submission ring (Vyukov per-cell sequence numbers), with
/// atomic wait/notify instead of spinning when full or empty: producers
/// park on the cell their ticket maps to until the consumer recycles it,
/// and vice versa — no sleeps, no condition variables on the hot path.
class RequestRing {
 public:
  explicit RequestRing(std::size_t log2_capacity)
      : mask_((std::size_t{1} << log2_capacity) - 1),
        cells_(std::make_unique<Cell[]>(mask_ + 1)) {
    for (std::size_t i = 0; i <= mask_; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

  void push(Request req) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        // Ring full: this cell still holds an unconsumed request. Park
        // until the consumer bumps its sequence, then re-read the tail.
        cell.seq.wait(seq, std::memory_order_acquire);
        pos = tail_.load(std::memory_order_relaxed);
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    Cell& cell = cells_[pos & mask_];
    cell.req = std::move(req);
    cell.seq.store(pos + 1, std::memory_order_release);
    cell.seq.notify_all();
  }

  Request pop() {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq) -
                               static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        // Ring empty: park until a producer publishes into this cell.
        cell.seq.wait(seq, std::memory_order_acquire);
        pos = head_.load(std::memory_order_relaxed);
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    return take(pos);
  }

  /// Non-blocking pop for shutdown draining; false when the ring is
  /// empty (or the next cell is still being written by a producer).
  bool try_pop(Request& out) {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq) -
                               static_cast<std::int64_t>(pos + 1);
      if (dif < 0) return false;
      if (dif == 0 && head_.compare_exchange_weak(
                          pos, pos + 1, std::memory_order_relaxed)) {
        out = take(pos);
        return true;
      }
      pos = head_.load(std::memory_order_relaxed);
    }
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    Request req;
  };

  Request take(std::uint64_t pos) {
    Cell& cell = cells_[pos & mask_];
    Request req = std::move(cell.req);
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    cell.seq.notify_all();
    return req;
  }

  std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(util::kCacheLineSize) std::atomic<std::uint64_t> tail_{0};  // producers
  alignas(util::kCacheLineSize) std::atomic<std::uint64_t> head_{0};  // consumers
};

/// Request-serving front-end: clients submit Requests into the MPMC
/// ring; worker threads pop, run the op against the Store, and signal
/// the client's Completion. Shutdown drains: stop() enqueues one kStop
/// sentinel per worker, so every request submitted before stop() is
/// served, and requests still queued behind the sentinels complete with
/// kStopped rather than hanging their clients.
template <class TM, class RR>
class Service {
 public:
  using StoreType = Store<TM, RR>;

  struct Stats {
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    std::uint64_t dels = 0;
    std::uint64_t scans = 0;
  };

  Service(StoreType& store, std::size_t workers, std::size_t log2_queue = 6)
      : store_(store), ring_(log2_queue) {
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      workers_.emplace_back([this] { serve(); });
  }

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  ~Service() { stop(); }

  /// Enqueue a request. `req.done` must outlive the completion signal.
  /// Blocks while the ring is full; callable from any number of client
  /// threads. A submit that races stop() fails fast: it returns false
  /// and signals `req.done` with kShutdown instead of parking the
  /// request (and its waiter) behind a drained ring forever.
  bool submit(Request req) {
    // Dekker handshake with stop(): the submitter publishes itself then
    // checks the flag; stop() publishes the flag then waits for the
    // submitter count to drain. seq_cst on both sides so one of the two
    // always observes the other — acquire/release alone would let both
    // loads pass both stores and push into a ring no worker will drain.
    submitters_.fetch_add(1, std::memory_order_seq_cst);
    if (stopped_.load(std::memory_order_seq_cst)) {
      submitters_.fetch_sub(1, std::memory_order_seq_cst);
      submitters_.notify_all();
      if (req.done != nullptr) req.done->signal(ResultCode::kShutdown);
      return false;
    }
    ring_.push(std::move(req));
    submitters_.fetch_sub(1, std::memory_order_seq_cst);
    // seq_cst so this load cannot stay stale past stop()'s flag store:
    // either it sees the flag (and notifies the waiter), or the whole
    // decrement is seq_cst-before stop()'s count probe, which then reads
    // zero and never parks. A weaker order could do neither — skipping
    // the notify a parked stop() depends on.
    if (stopped_.load(std::memory_order_seq_cst)) submitters_.notify_all();
    return true;
  }

  /// Convenience synchronous client calls (one Completion on the stack).
  ResultCode get(std::string key, std::string& value_out) {
    Completion done;
    submit(Request{OpCode::kGet, std::move(key), {}, 0, &done});
    done.wait();
    if (done.rc == ResultCode::kOk) value_out = std::move(done.value);
    return done.rc;
  }

  ResultCode put(std::string key, std::string value, bool* created = nullptr) {
    Completion done;
    submit(Request{OpCode::kPut, std::move(key), std::move(value), 0, &done});
    done.wait();
    if (created != nullptr) *created = done.created;
    return done.rc;
  }

  ResultCode del(std::string key) {
    Completion done;
    submit(Request{OpCode::kDel, std::move(key), {}, 0, &done});
    done.wait();
    return done.rc;
  }

  ResultCode scan(std::string start_key, std::size_t limit,
                  std::size_t& count_out) {
    Completion done;
    submit(Request{OpCode::kScan, std::move(start_key), {}, limit, &done});
    done.wait();
    count_out = done.scan_count;
    return done.rc;
  }

  /// Entry-collecting scan: like scan(), but the visited (key, value)
  /// pairs land in `entries_out` in canonical scan order. The count is
  /// entries_out.size().
  ResultCode scan(std::string start_key, std::size_t limit,
                  std::vector<std::pair<std::string, std::string>>&
                      entries_out) {
    Completion done;
    submit(Request{OpCode::kScan, std::move(start_key), {}, limit, &done,
                   /*collect=*/true});
    done.wait();
    entries_out = std::move(done.entries);
    return done.rc;
  }

  /// Stop and join the workers. Idempotent; implied by the destructor.
  /// Every request whose submit() won the race against stop() is served
  /// or answered kStopped; a submit() that loses is rejected with
  /// kShutdown — either way no waiter hangs.
  void stop() {
    if (stopped_.exchange(true, std::memory_order_seq_cst)) return;
    // Wait out in-flight submitters (the other half of the submit()
    // handshake) so the sentinels land after every accepted request.
    for (;;) {
      const std::size_t in_flight =
          submitters_.load(std::memory_order_seq_cst);
      if (in_flight == 0) break;
      submitters_.wait(in_flight, std::memory_order_seq_cst);
    }
    for (std::size_t i = 0; i < workers_.size(); ++i)
      ring_.push(Request{OpCode::kStop, {}, {}, 0, nullptr});
    for (std::thread& w : workers_) w.join();
    Request leftover;
    while (ring_.try_pop(leftover))
      if (leftover.done != nullptr) leftover.done->signal(ResultCode::kStopped);
  }

  Stats stats() const noexcept {
    Stats total;
    for (const auto& s : worker_stats_) {
      total.gets += s.value.gets.load(std::memory_order_relaxed);
      total.puts += s.value.puts.load(std::memory_order_relaxed);
      total.dels += s.value.dels.load(std::memory_order_relaxed);
      total.scans += s.value.scans.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// One metrics-plane snapshot document (counters, gauges, abort
  /// attribution, contention heatmap, watchdog), prefixed with this
  /// service's own request counters. A serving layer exposes this as its
  /// stats endpoint; callable any time, from any thread.
  std::string stats_snapshot() const {
    const Stats s = stats();
    std::string doc = "{\"service\":{\"gets\":" + std::to_string(s.gets) +
                      ",\"puts\":" + std::to_string(s.puts) +
                      ",\"dels\":" + std::to_string(s.dels) +
                      ",\"scans\":" + std::to_string(s.scans) +
                      "},\"metrics\":";
    doc += harness::metrics_snapshot_json();
    doc += '}';
    return doc;
  }

 private:
  struct AtomicStats {
    std::atomic<std::uint64_t> gets{0};
    std::atomic<std::uint64_t> puts{0};
    std::atomic<std::uint64_t> dels{0};
    std::atomic<std::uint64_t> scans{0};
  };

  void serve() {
    const std::size_t me =
        worker_seq_.fetch_add(1, std::memory_order_relaxed) %
        util::kMaxThreads;
    AtomicStats& stats = worker_stats_[me].value;
    for (;;) {
      Request req = ring_.pop();
      if (req.op == OpCode::kStop) return;  // one sentinel per worker
      Completion* done = req.done;
      switch (req.op) {
        case OpCode::kGet: {
          stats.gets.fetch_add(1, std::memory_order_relaxed);
          std::string value;
          const bool hit = store_.get(req.key, value);
          if (done != nullptr) {
            done->value = std::move(value);
            done->signal(hit ? ResultCode::kOk : ResultCode::kNotFound);
          }
          break;
        }
        case OpCode::kPut: {
          stats.puts.fetch_add(1, std::memory_order_relaxed);
          const bool created = store_.put(req.key, req.value);
          if (done != nullptr) {
            done->created = created;
            done->signal(ResultCode::kOk);
          }
          break;
        }
        case OpCode::kDel: {
          stats.dels.fetch_add(1, std::memory_order_relaxed);
          const bool hit = store_.del(req.key);
          if (done != nullptr)
            done->signal(hit ? ResultCode::kOk : ResultCode::kNotFound);
          break;
        }
        case OpCode::kScan: {
          stats.scans.fetch_add(1, std::memory_order_relaxed);
          std::size_t n = 0;
          if (req.collect && done != nullptr) {
            done->entries.clear();
            n = store_.scan_from(
                req.key, req.scan_limit,
                [done](const std::string& k, const std::string& v) {
                  done->entries.emplace_back(k, v);
                });
          } else {
            n = store_.scan_from(
                req.key, req.scan_limit,
                [](const std::string&, const std::string&) {});
          }
          if (done != nullptr) {
            done->scan_count = n;
            done->signal(ResultCode::kOk);
          }
          break;
        }
        case OpCode::kBatch: {
          // Pipelined group: stats ops answer locally, everything else
          // goes through Store::run_batch, which fuses consecutive
          // same-shard runs into single window transactions.
          BatchCounters bc;
          BatchOp* ops = req.batch;
          const std::size_t n = req.batch_len;
          std::size_t i = 0;
          while (i < n) {
            if (ops[i].op == OpCode::kStats) {
              ops[i].out = stats_snapshot();
              ops[i].hit = true;
              ++i;
              continue;
            }
            std::size_t j = i;
            while (j < n && ops[j].op != OpCode::kStats) ++j;
            store_.run_batch(ops + i, j - i, bc);
            i = j;
          }
          for (i = 0; i < n; ++i) {
            switch (ops[i].op) {
              case OpCode::kGet:
                stats.gets.fetch_add(1, std::memory_order_relaxed);
                break;
              case OpCode::kPut:
                stats.puts.fetch_add(1, std::memory_order_relaxed);
                break;
              case OpCode::kDel:
                stats.dels.fetch_add(1, std::memory_order_relaxed);
                break;
              case OpCode::kScan:
                stats.scans.fetch_add(1, std::memory_order_relaxed);
                break;
              default:
                break;
            }
          }
          if (done != nullptr) {
            done->fused_ops = bc.fused_ops;
            done->batch_txs = bc.batch_txs;
            done->signal(ResultCode::kOk);
          }
          break;
        }
        case OpCode::kStats: {
          if (done != nullptr) {
            done->value = stats_snapshot();
            done->signal(ResultCode::kOk);
          }
          break;
        }
        case OpCode::kStop:
          break;  // handled above
      }
    }
  }

  StoreType& store_;
  RequestRing ring_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
  std::atomic<std::size_t> submitters_{0};  // submit()s inside the gate
  std::atomic<std::size_t> worker_seq_{0};
  util::CachePadded<AtomicStats> worker_stats_[util::kMaxThreads];
};

}  // namespace hohtm::kv
