#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace hohtm::sched {

/// A schedule-exploration scenario: `setup` resets the shared state
/// (which should live in static storage, so addresses — and therefore
/// orec / reservation hash slots — are identical across schedules),
/// `bodies` are the logical threads, and `check` runs after every
/// schedule with all threads joined; it returns "" on success or a
/// failure message.
struct Scenario {
  std::function<void()> setup;
  std::vector<std::function<void()>> bodies;
  std::function<std::string()> check;
};

/// Outcome of an exploration. On failure, `failure` carries the message,
/// `failing_steps` the interleaving, and either `failing_choices` (DFS)
/// or `failing_seed`/`pct_depth` (random/PCT) is enough to replay the
/// identical schedule — see replay_choices / replay_random.
struct ExploreResult {
  std::size_t schedules = 0;   // schedules actually executed
  std::size_t truncated = 0;   // schedules that hit the step bound
  bool exhausted = false;      // DFS: the full tree fit in the budget
  bool failed = false;
  std::string failure;
  std::vector<Step> failing_steps;
  std::vector<std::size_t> failing_choices;
  std::uint64_t failing_seed = 0;
  std::size_t pct_depth = 0;
};

/// Exhaustive depth-first exploration of every interleaving of the
/// scenario's SchedPoints, up to `max_schedules` schedules of at most
/// `max_steps` decisions each. Stops at the first failing schedule.
/// Deterministic: rerunning is replaying.
ExploreResult explore_dfs(const Scenario& scenario,
                          std::size_t max_schedules, std::size_t max_steps);

/// Seeded random exploration. Schedule i uses seed `base_seed + i`, so a
/// failure report names the exact per-schedule seed. With `pct_depth` ==
/// 0 every decision picks uniformly among enabled threads; with d > 0 it
/// is PCT-style priority scheduling (Burckhardt et al.): threads get a
/// random priority order, the highest-priority enabled thread always
/// runs, and at d randomly chosen decisions the running thread's
/// priority drops below everyone — covering bugs that need d ordered
/// context switches with provable probability. Stops at first failure.
ExploreResult explore_random(const Scenario& scenario,
                             std::uint64_t base_seed, std::size_t schedules,
                             std::size_t pct_depth, std::size_t max_steps);

/// Replay one DFS schedule from its recorded choice list.
ExploreResult replay_choices(const Scenario& scenario,
                             const std::vector<std::size_t>& choices,
                             std::size_t max_steps);

/// Replay one random/PCT schedule from its printed (seed, depth) pair.
inline ExploreResult replay_random(const Scenario& scenario,
                                   std::uint64_t seed, std::size_t pct_depth,
                                   std::size_t max_steps) {
  return explore_random(scenario, seed, 1, pct_depth, max_steps);
}

/// Depth multiplier for exploration budgets, from the HOH_SCHED_DEPTH
/// environment variable (default 1; CI's deep job raises it). Tests
/// scale max_schedules / schedule counts by this so plain ctest stays
/// inside the tier-1 time budget.
std::size_t depth_multiplier();

/// One-line human summary ("42 schedules, exhausted" / "FAILED at seed
/// 17 depth 3: ...") for test logs.
std::string describe(const ExploreResult& r);

}  // namespace hohtm::sched
