#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace hohtm::sched {

/// Compile-time master switch for the schedule-exploration hooks, set by
/// the HOHTM_SCHED CMake option (mirrors HOHTM_TRACE / util::kTraceBuild).
/// When false every hook below is an empty inline function, so the
/// instrumented TM/RR hot paths compile to exactly the uninstrumented
/// code. The *machinery* (Scheduler, explorers) is always compiled and
/// unit-tested in every build; only the hooks are gated.
#ifdef HOHTM_SCHED_ENABLED
inline constexpr bool kSchedBuild = true;
#else
inline constexpr bool kSchedBuild = false;
#endif

/// What kind of shared-memory access the instrumented thread is *about
/// to* perform. A SchedPoint fires immediately before the access, so the
/// scheduler chooses which thread performs its next access — the classic
/// loom/relacy/CHESS execution model. Names appear in printed schedules.
enum class Op : std::uint8_t {
  kYield = 0,         // explicit yield (scenario code, thread start)
  kClockRead,         // seqlock / global-version-clock read
  kLockAcquire,       // seqlock CAS even->odd
  kLockRelease,       // seqlock release store
  kClockAdvance,      // TL2/TLEager global clock fetch_add
  kOrecRead,          // ownership-record load
  kOrecCas,           // ownership-record acquire CAS
  kOrecRelease,       // ownership-record release store
  kTmLoad,            // transactional data-word load
  kTmStore,           // transactional data-word store
  kQuiescePublish,    // quiescence slot publish
  kQuiesceDeactivate, // quiescence slot clear
  kQuiesceWait,       // committer blocked on the quiescence fence
  kRrReserve,         // reservation Reserve
  kRrGet,             // reservation Get
  kRrRevoke,          // reservation Revoke
  kBackoff,           // retry-loop backoff pause
  kUserMark,          // scenario-defined marker
  kKvMigrate,         // kv store: bucket-migration window boundary
  kKvScanPark,        // kv store: scan-cursor window boundary
};
inline constexpr std::size_t kOpCount = 20;
extern const char* const kOpNames[kOpCount];

/// Bug-injection mutants used to validate the explorer itself: each one
/// disables a correctness-critical step in the real code, and the
/// schedule-exploration suite asserts the explorer catches it within a
/// bounded number of schedules (tests/sched/). The checks are compiled
/// out entirely unless HOHTM_SCHED=ON, so production builds carry no
/// mutation branches.
enum class Mutation : unsigned {
  kNone = 0,
  kSkipQuiescenceWait,   // Quiescence::wait_until returns immediately
  kDropRevoke,           // RR Revoke keeps the ownership stamp intact
  kSkipReadValidation,   // TML readers skip the post-read clock check
  kDropMigrationReserve, // kv migration parks its anchor without reserving
  kFusionNeverFallback,  // fused traversal keeps speculating after an abort
  kDropAborterId,        // revokers/aborters omit their identity stamp
  kDropScanCursorHandover, // kv scan parks its cursor without reserving
};

namespace detail {
// Always compiled (harmless one word); only consulted in sched builds.
inline std::atomic<unsigned> g_mutation{0};

// Implemented in scheduler.cpp. No-ops unless the calling thread is a
// logical thread of an active Scheduler run.
void point_impl(Op op, const void* addr) noexcept;
bool spin_wait_impl(Op op, bool (*ready)(void*), void* ctx) noexcept;
bool managed_impl() noexcept;
}  // namespace detail

/// Activate a mutant (tests only; pass kNone to restore). Settable in
/// every build so mutant tests can assert inertness without the gate.
inline void set_mutation(Mutation m) noexcept {
  detail::g_mutation.store(static_cast<unsigned>(m),
                           std::memory_order_relaxed);
}

/// True iff mutant `m` is active. Constant-false outside sched builds:
/// the injected-bug branches vanish from production code.
inline bool mutate(Mutation m) noexcept {
  if constexpr (kSchedBuild) {
    return detail::g_mutation.load(std::memory_order_relaxed) ==
           static_cast<unsigned>(m);
  } else {
    (void)m;
    return false;
  }
}

/// True iff the calling thread is a logical thread of an active
/// Scheduler run (always false outside sched builds).
inline bool managed() noexcept {
  if constexpr (kSchedBuild) return detail::managed_impl();
  return false;
}

/// SchedPoint: yield to the virtual scheduler immediately before
/// performing shared-memory access `op` on `addr`. Nothing happens (and
/// nothing is compiled in) unless this is a sched build AND the calling
/// thread is managed — the rest of the test suite runs at full speed.
inline void point(Op op, const void* addr = nullptr) noexcept {
  if constexpr (kSchedBuild) detail::point_impl(op, addr);
}

/// Blocking SchedPoint for unbounded spin loops (seqlock wait_even, the
/// quiescence fence): the calling thread becomes *disabled* until
/// `pred()` holds, so blocked threads are not scheduling choices and
/// exhaustive exploration stays finite.
///
/// Returns true when the scheduler resumed the thread with `pred()` true
/// (the caller may proceed); false when the thread is unmanaged or the
/// run was cancelled — the caller MUST fall through to its real spin
/// loop. `pred` is evaluated on the scheduler's thread while every
/// logical thread is parked; it must be read-only.
template <class Pred>
inline bool spin_wait(Op op, Pred&& pred) noexcept {
  if constexpr (kSchedBuild) {
    if (detail::managed_impl()) {
      using P = std::remove_reference_t<Pred>;
      return detail::spin_wait_impl(
          op, [](void* ctx) { return (*static_cast<P*>(ctx))(); },
          const_cast<std::remove_const_t<P>*>(&pred));
    }
  } else {
    (void)op;
    (void)pred;
  }
  return false;
}

}  // namespace hohtm::sched
