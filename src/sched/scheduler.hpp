#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sched/schedpoint.hpp"

namespace hohtm::sched {

/// One executed scheduling decision: logical thread `thread` was chosen
/// to perform its pending operation `op` on `addr`.
struct Step {
  std::uint32_t thread;
  Op op;
  const void* addr;
};

/// Render a schedule as "T0:clock_read T1:lock_acquire ..." for failure
/// reports and replay comparison.
std::string format_steps(const std::vector<Step>& steps);

/// Cooperative virtual scheduler: runs N logical threads (real OS
/// threads, at most ONE runnable at any instant) and serializes them at
/// SchedPoints, so every interleaving of instrumented shared-memory
/// accesses is reachable deterministically — including on a 1-CPU box
/// where preemptive scheduling explores almost nothing.
///
/// Execution model (loom/relacy/CHESS style):
///  - every logical thread parks at start; the host picks who runs;
///  - the running thread executes until its next SchedPoint, then parks
///    and hands control back to the host;
///  - spin_wait points disable a thread until its predicate holds, so
///    unbounded spin loops (seqlock wait_even, the quiescence fence) are
///    never scheduling choices and exploration stays finite;
///  - when no thread is enabled and not all are finished, the run is
///    reported as a deadlock; when the step bound is hit, as truncated.
///    In both cases the run is cancelled: hooks become pass-throughs and
///    the threads free-run to completion so they can be joined.
///
/// Requirements on scenario code (see docs/TESTING.md):
///  - bodies must be deterministic given the schedule (no time, no
///    unseeded randomness) and must not block on OS primitives the
///    scheduler cannot see (notably GLock's global std::mutex — use the
///    instrumented backends TML/NOrec/TL2/TLEager);
///  - shared state should live in static storage so addresses (and thus
///    orec/reservation hash slots) are identical across schedules;
///  - exceptions escaping a body cancel the run and are reported.
class Scheduler {
 public:
  /// Picks the next thread: returns an index INTO `enabled` (sorted
  /// logical-thread ids that are runnable right now). `decision` counts
  /// scheduling decisions made so far in this run.
  using Picker = std::function<std::size_t(
      const std::vector<std::size_t>& enabled, std::size_t decision)>;

  struct Result {
    std::vector<Step> steps;
    bool deadlocked = false;
    bool truncated = false;  // hit max_steps
    std::string error;       // body exception / picker failure, if any
    bool ok() const noexcept {
      return !deadlocked && !truncated && error.empty();
    }
  };

  /// Run `bodies` to completion under `pick`. Only one scheduler run may
  /// be active per process at a time (enforced). Usable in every build:
  /// in non-sched builds only explicit Scheduler::yield / spin-wait
  /// calls inside the bodies create scheduling points.
  static Result run(const std::vector<std::function<void()>>& bodies,
                    const Picker& pick, std::size_t max_steps);

  /// Explicit SchedPoint for scenario/test code; works in every build
  /// (no-op when the calling thread is unmanaged).
  static void yield(Op op = Op::kYield, const void* addr = nullptr) noexcept {
    detail::point_impl(op, addr);
  }

  /// Explicit blocking SchedPoint for scenario/test code. Same contract
  /// as sched::spin_wait but not compile-time gated: false means the
  /// caller must spin for real.
  template <class Pred>
  static bool block_until(Pred&& pred, Op op = Op::kYield) noexcept {
    if (!detail::managed_impl()) return false;
    using P = std::remove_reference_t<Pred>;
    return detail::spin_wait_impl(
        op, [](void* ctx) { return (*static_cast<P*>(ctx))(); },
        const_cast<std::remove_const_t<P>*>(&pred));
  }
};

}  // namespace hohtm::sched
