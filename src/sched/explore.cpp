#include "sched/explore.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "util/random.hpp"

namespace hohtm::sched {

namespace {

/// Run one schedule and evaluate the scenario. Returns "" on success.
/// Deadlock and body exceptions are failures; truncation is not (it is
/// tallied by the caller).
std::string run_once(const Scenario& scenario, const Scheduler::Picker& pick,
                     std::size_t max_steps, Scheduler::Result& out) {
  if (scenario.setup) scenario.setup();
  out = Scheduler::run(scenario.bodies, pick, max_steps);
  if (!out.error.empty()) return out.error;
  if (out.deadlocked) return "deadlock: no enabled thread";
  if (out.truncated) return "";  // counted, not failed
  if (scenario.check) return scenario.check();
  return "";
}

}  // namespace

ExploreResult explore_dfs(const Scenario& scenario,
                          std::size_t max_schedules, std::size_t max_steps) {
  ExploreResult result;
  // DFS frontier: for each decision along the current path, the choice
  // taken and how many choices were enabled there. The next schedule
  // replays the recorded prefix, then takes first-choice everywhere.
  struct Decision {
    std::size_t chosen;
    std::size_t fanout;
  };
  std::vector<Decision> path;

  while (result.schedules < max_schedules) {
    std::vector<Decision> taken;
    bool mismatch = false;
    Scheduler::Picker pick = [&](const std::vector<std::size_t>& enabled,
                                 std::size_t decision) -> std::size_t {
      std::size_t choice = 0;
      if (decision < path.size()) {
        if (enabled.size() != path[decision].fanout) {
          mismatch = true;
          throw std::runtime_error(
              "nondeterministic scenario: replayed prefix saw a different "
              "enabled set");
        }
        choice = path[decision].chosen;
      }
      taken.push_back(Decision{choice, enabled.size()});
      return choice;
    };

    Scheduler::Result run;
    const std::string failure = run_once(scenario, pick, max_steps, run);
    result.schedules += 1;
    if (run.truncated) result.truncated += 1;
    if (!failure.empty() || mismatch) {
      result.failed = true;
      result.failure = failure;
      result.failing_steps = run.steps;
      result.failing_choices.clear();
      for (const Decision& d : taken) result.failing_choices.push_back(d.chosen);
      return result;
    }

    // Backtrack: drop exhausted tail decisions, advance the deepest one
    // that still has an untried sibling.
    path = std::move(taken);
    while (!path.empty() && path.back().chosen + 1 >= path.back().fanout)
      path.pop_back();
    if (path.empty()) {
      result.exhausted = true;
      return result;
    }
    path.back().chosen += 1;
  }
  return result;
}

ExploreResult explore_random(const Scenario& scenario,
                             std::uint64_t base_seed, std::size_t schedules,
                             std::size_t pct_depth, std::size_t max_steps) {
  ExploreResult result;
  result.pct_depth = pct_depth;
  for (std::size_t i = 0; i < schedules; ++i) {
    const std::uint64_t seed = base_seed + i;
    util::Xoshiro256 rng(seed);

    // PCT state: a random priority per logical thread (higher wins) and
    // pct_depth decision indices where the running thread is demoted.
    std::vector<std::uint64_t> priority;
    std::vector<std::size_t> change_points;
    if (pct_depth > 0) {
      for (std::size_t d = 0; d < pct_depth; ++d)
        change_points.push_back(
            static_cast<std::size_t>(rng.next_below(max_steps ? max_steps : 1)));
      std::sort(change_points.begin(), change_points.end());
    }
    std::uint64_t demotions = 0;

    Scheduler::Picker pick = [&](const std::vector<std::size_t>& enabled,
                                 std::size_t decision) -> std::size_t {
      if (pct_depth == 0) {
        return static_cast<std::size_t>(rng.next_below(enabled.size()));
      }
      while (priority.size() <= *std::max_element(enabled.begin(),
                                                  enabled.end()))
        priority.push_back((rng.next() >> 1) + (1ULL << 62));
      std::size_t best = 0;
      for (std::size_t k = 1; k < enabled.size(); ++k)
        if (priority[enabled[k]] > priority[enabled[best]]) best = k;
      if (std::binary_search(change_points.begin(), change_points.end(),
                             decision))
        // Successive demotions get pct_depth, pct_depth-1, ... — each
        // below every initial priority (>= 2^62) and below all earlier
        // demotions, as PCT requires.
        priority[enabled[best]] =
            pct_depth > demotions ? pct_depth - demotions++ : 0;
      return best;
    };

    Scheduler::Result run;
    const std::string failure = run_once(scenario, pick, max_steps, run);
    result.schedules += 1;
    if (run.truncated) result.truncated += 1;
    if (!failure.empty()) {
      result.failed = true;
      result.failure = failure;
      result.failing_steps = run.steps;
      result.failing_seed = seed;
      return result;
    }
  }
  return result;
}

ExploreResult replay_choices(const Scenario& scenario,
                             const std::vector<std::size_t>& choices,
                             std::size_t max_steps) {
  ExploreResult result;
  Scheduler::Picker pick = [&](const std::vector<std::size_t>& enabled,
                               std::size_t decision) -> std::size_t {
    if (decision < choices.size()) {
      if (choices[decision] >= enabled.size())
        throw std::runtime_error(
            "nondeterministic scenario: replayed choice out of range");
      return choices[decision];
    }
    return 0;
  };
  Scheduler::Result run;
  const std::string failure = run_once(scenario, pick, max_steps, run);
  result.schedules = 1;
  if (run.truncated) result.truncated = 1;
  result.failing_steps = run.steps;
  result.failing_choices = choices;
  if (!failure.empty()) {
    result.failed = true;
    result.failure = failure;
  }
  return result;
}

std::size_t depth_multiplier() {
  const char* env = std::getenv("HOH_SCHED_DEPTH");
  if (env == nullptr) return 1;
  const long v = std::atol(env);
  return v > 0 ? static_cast<std::size_t>(v) : 1;
}

std::string describe(const ExploreResult& r) {
  std::string out = std::to_string(r.schedules) + " schedules";
  if (r.truncated > 0)
    out += " (" + std::to_string(r.truncated) + " truncated)";
  if (r.exhausted) out += ", exhausted";
  if (r.failed) {
    out += ", FAILED: " + r.failure;
    if (!r.failing_choices.empty()) {
      out += " [choices:";
      for (std::size_t c : r.failing_choices) out += ' ' + std::to_string(c);
      out += "]";
    } else {
      out += " [seed " + std::to_string(r.failing_seed) + ", depth " +
             std::to_string(r.pct_depth) + "]";
    }
    out += " schedule: " + format_steps(r.failing_steps);
  }
  return out;
}

}  // namespace hohtm::sched
