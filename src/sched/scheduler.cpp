#include "sched/scheduler.hpp"

#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace hohtm::sched {

const char* const kOpNames[kOpCount] = {
    "yield",        "clock_read",   "lock_acquire", "lock_release",
    "clock_adv",    "orec_read",    "orec_cas",     "orec_release",
    "load",         "store",        "q_publish",    "q_deactivate",
    "q_wait",       "rr_reserve",   "rr_get",       "rr_revoke",
    "backoff",      "mark",         "kv_migrate",   "kv_scan_park"};

namespace {

constexpr std::size_t kNone = ~std::size_t{0};

/// All mutable state of one scheduler run. Guarded by `mu`; a single
/// condition variable is shared by the host and every logical thread
/// (thread counts are tiny, so broadcast wakeups are cheap and keep the
/// token-passing protocol simple).
struct Run {
  enum class State : std::uint8_t {
    kStarting,  // thread spawned, not yet parked at its entry point
    kReady,     // parked at a SchedPoint, runnable
    kBlocked,   // parked in spin_wait; runnable only when pred() holds
    kRunning,   // the one thread currently executing
    kDone,      // body returned
  };

  struct Thread {
    State state = State::kStarting;
    Op pending_op = Op::kYield;     // op it will perform when resumed
    const void* pending_addr = nullptr;
    bool (*pred)(void*) = nullptr;  // kBlocked only
    void* pred_ctx = nullptr;
  };

  std::mutex mu;
  std::condition_variable cv;
  std::vector<Thread> threads;
  std::size_t active = kNone;  // index allowed to run; kNone = host
  bool cancelled = false;
  std::string error;

  bool runnable(std::size_t i) {
    Thread& t = threads[i];
    if (t.state == State::kReady) return true;
    // Predicates run on the host thread while every logical thread is
    // parked (we hold mu), so read-only evaluation is race-free.
    return t.state == State::kBlocked && t.pred != nullptr &&
           t.pred(t.pred_ctx);
  }
};

Run* g_run = nullptr;                       // guarded by g_run_mu
std::mutex g_run_mu;                        // serializes whole runs
thread_local Run* tls_run = nullptr;        // set in managed threads
thread_local std::size_t tls_index = 0;

/// Park the calling logical thread and hand control to the host. Called
/// with `lock` held; returns with it held, once this thread is active
/// again (or the run was cancelled).
void park(std::unique_lock<std::mutex>& lock, Run& run, std::size_t me) {
  run.active = kNone;
  run.cv.notify_all();
  run.cv.wait(lock, [&] { return run.active == me || run.cancelled; });
}

}  // namespace

namespace detail {

bool managed_impl() noexcept { return tls_run != nullptr; }

void point_impl(Op op, const void* addr) noexcept {
  Run* run = tls_run;
  if (run == nullptr) return;
  std::unique_lock<std::mutex> lock(run->mu);
  if (run->cancelled) return;  // free-running teardown
  Run::Thread& me = run->threads[tls_index];
  me.state = Run::State::kReady;
  me.pending_op = op;
  me.pending_addr = addr;
  park(lock, *run, tls_index);
  me.state = Run::State::kRunning;
}

bool spin_wait_impl(Op op, bool (*ready)(void*), void* ctx) noexcept {
  Run* run = tls_run;
  if (run == nullptr) return false;
  std::unique_lock<std::mutex> lock(run->mu);
  if (run->cancelled) return false;
  Run::Thread& me = run->threads[tls_index];
  me.state = Run::State::kBlocked;
  me.pending_op = op;
  me.pending_addr = nullptr;
  me.pred = ready;
  me.pred_ctx = ctx;
  park(lock, *run, tls_index);
  me.pred = nullptr;
  me.pred_ctx = nullptr;
  if (run->cancelled) return false;  // caller falls back to real spinning
  me.state = Run::State::kRunning;
  return true;
}

}  // namespace detail

std::string format_steps(const std::vector<Step>& steps) {
  std::string out;
  for (const Step& s : steps) {
    if (!out.empty()) out += ' ';
    out += 'T';
    out += std::to_string(s.thread);
    out += ':';
    out += kOpNames[static_cast<std::size_t>(s.op)];
  }
  return out;
}

Scheduler::Result Scheduler::run(
    const std::vector<std::function<void()>>& bodies, const Picker& pick,
    std::size_t max_steps) {
  std::lock_guard<std::mutex> run_guard(g_run_mu);
  Run run;
  run.threads.resize(bodies.size());
  g_run = &run;

  std::vector<std::thread> workers;
  workers.reserve(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    workers.emplace_back([&run, &bodies, i] {
      tls_run = &run;
      tls_index = i;
      // Entry SchedPoint: every thread parks before touching anything,
      // so "who goes first" (and thus thread-registry slot order) is the
      // scheduler's first decision, not an OS race.
      detail::point_impl(Op::kYield, nullptr);
      try {
        bodies[i]();
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(run.mu);
        if (run.error.empty())
          run.error = std::string("body threw: ") + e.what();
        run.cancelled = true;
      } catch (...) {
        std::lock_guard<std::mutex> lock(run.mu);
        if (run.error.empty()) run.error = "body threw";
        run.cancelled = true;
      }
      std::lock_guard<std::mutex> lock(run.mu);
      run.threads[i].state = Run::State::kDone;
      run.active = kNone;
      run.cv.notify_all();
      tls_run = nullptr;
    });
  }

  Result result;
  std::vector<std::size_t> enabled;
  {
    std::unique_lock<std::mutex> lock(run.mu);
    for (std::size_t decision = 0;; ++decision) {
      // Wait until the world is quiet: no thread running or still
      // starting up.
      run.cv.wait(lock, [&] {
        if (run.active != kNone) return false;
        for (const Run::Thread& t : run.threads)
          if (t.state == Run::State::kStarting ||
              t.state == Run::State::kRunning)
            return false;
        return true;
      });
      if (run.cancelled) break;

      enabled.clear();
      bool all_done = true;
      for (std::size_t i = 0; i < run.threads.size(); ++i) {
        if (run.threads[i].state != Run::State::kDone) all_done = false;
        if (run.runnable(i)) enabled.push_back(i);
      }
      if (all_done) break;
      if (enabled.empty()) {
        result.deadlocked = true;
        run.cancelled = true;
        run.cv.notify_all();
        break;
      }
      if (result.steps.size() >= max_steps) {
        result.truncated = true;
        run.cancelled = true;
        run.cv.notify_all();
        break;
      }

      std::size_t choice;
      try {
        choice = pick(enabled, decision);
      } catch (const std::exception& e) {
        run.error = std::string("picker: ") + e.what();
        run.cancelled = true;
        run.cv.notify_all();
        break;
      }
      if (choice >= enabled.size()) {
        run.error = "picker returned out-of-range choice";
        run.cancelled = true;
        run.cv.notify_all();
        break;
      }
      const std::size_t next = enabled[choice];
      result.steps.push_back(Step{static_cast<std::uint32_t>(next),
                                  run.threads[next].pending_op,
                                  run.threads[next].pending_addr});
      run.active = next;
      run.cv.notify_all();
    }
  }

  // Cancelled threads free-run (hooks pass through) until they finish;
  // healthy runs are already done. Either way the workers are joinable.
  for (std::thread& w : workers) w.join();
  {
    std::lock_guard<std::mutex> lock(run.mu);
    result.error = run.error;
  }
  g_run = nullptr;
  return result;
}

}  // namespace hohtm::sched
