#pragma once

#include <cstdint>
#include <thread>

#include "sched/schedpoint.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace hohtm::util {

/// One spin-wait hint iteration (PAUSE on x86, YIELD on ARM).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Fallback: plain compiler barrier.
  asm volatile("" ::: "memory");
#endif
}

/// Bounded exponential backoff used between transaction retries. After the
/// spin budget is exhausted it yields to the scheduler, which matters on
/// machines with fewer cores than benchmark threads (our evaluation box is
/// oversubscribed above 2 threads).
class Backoff {
 public:
  explicit Backoff(std::uint32_t min_spins = 16, std::uint32_t max_spins = 4096) noexcept
      : limit_(min_spins), max_(max_spins) {}

  void pause() noexcept {
    if constexpr (sched::kSchedBuild) {
      // A managed thread must hand control back to the virtual scheduler
      // instead of burning its (only) virtual timeslice spinning.
      if (sched::managed()) {
        sched::point(sched::Op::kBackoff);
        return;
      }
    }
    if (limit_ > max_) {
      // Yielding the timeslice IS this class's park once the spin budget
      // is spent — there is no predicate to block on at this layer, and
      // on an oversubscribed (or single-core) box the peer needs the CPU.
      std::this_thread::yield();  // hohtm-lint: allow(no-sleep-sync)
      return;
    }
    for (std::uint32_t i = 0; i < limit_; ++i) cpu_relax();
    limit_ *= 2;
  }

  void reset(std::uint32_t min_spins = 16) noexcept { limit_ = min_spins; }

 private:
  std::uint32_t limit_;
  std::uint32_t max_;
};

}  // namespace hohtm::util
