#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/random.hpp"

namespace hohtm::util {

/// Zipfian rank generator for YCSB-style skewed key draws (Gray et al.,
/// "Quickly Generating Billion-Record Synthetic Databases", SIGMOD '94).
///
/// Rank i in [0, n) is drawn with probability proportional to
/// 1 / (i+1)^theta; rank 0 is the hottest. Instead of YCSB's closed-form
/// approximation this implementation precomputes the full CDF once (n is
/// bounded by the record count, a few MB of doubles at paper scale) and
/// answers each draw with one xoshiro256** output and a binary search —
/// rejection-free and allocation-free on the draw path, so it is safe to
/// call from benchmark hot loops.
///
/// Deterministic: the draw sequence is a pure function of (n, theta,
/// seed). The unit test pins exact sequences; no statistical assertions.
class Zipfian {
 public:
  /// n == 0 is clamped to a single-rank domain: next() computes
  /// `cdf_.size() - 1`, which would underflow on an empty CDF and walk
  /// the binary search off the map.
  explicit Zipfian(std::size_t n, double theta = 0.99,
                   std::uint64_t seed = 0x5eedULL)
      : rng_(seed), cdf_(n == 0 ? 1 : n) {
    double sum = 0.0;
    for (std::size_t i = 0; i < cdf_.size(); ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (std::size_t i = 0; i < cdf_.size(); ++i) cdf_[i] /= sum;
  }

  /// Next rank in [0, n); rank 0 is the most popular.
  std::size_t next() noexcept {
    // 53-bit mantissa draw in [0, 1): exact, platform-independent.
    const double u =
        static_cast<double>(rng_.next() >> 11) * 0x1.0p-53;
    // First index whose cumulative probability exceeds u.
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] <= u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  std::size_t n() const noexcept { return cdf_.size(); }

 private:
  Xoshiro256 rng_;
  std::vector<double> cdf_;
};

/// Bijective rank scrambler: maps the popularity rank onto a
/// pseudo-random key index so hot keys are spread across the key space
/// (YCSB's fnv-hash step). splitmix64 is invertible, hence collision-free.
inline std::uint64_t scramble_rank(std::uint64_t rank) noexcept {
  std::uint64_t s = rank;
  return splitmix64(s);
}

}  // namespace hohtm::util
