#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace hohtm::util {

/// Power-of-two-bucketed histogram of non-negative 64-bit samples
/// (latencies in nanoseconds, mostly).
///
/// Bucket `b` holds every value whose bit width is `b`: bucket 0 is the
/// value 0, bucket b >= 1 covers [2^(b-1), 2^b - 1]. Recording is a
/// bit_width plus one array increment — cheap enough for commit paths —
/// and the geometric buckets give the usual trade: exact counts, ~2x
/// relative error on reported quantiles, bounded (65-slot) footprint no
/// matter the value range.
///
/// Not thread-safe by itself. The library uses it the same way it uses
/// tm::StatCounters: one instance per thread slot, written only by the
/// owning thread, merged by an aggregator at quiescent points.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t value) noexcept {
    counts_[std::bit_width(value)] += 1;
    count_ += 1;
    sum_ += value;
    if (count_ == 1 || value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  void merge(const Histogram& other) noexcept {
    if (other.count_ == 0) return;
    for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
  }

  void reset() noexcept { *this = Histogram{}; }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  std::uint64_t bucket_count(std::size_t b) const noexcept {
    return b < kBuckets ? counts_[b] : 0;
  }

  /// Inclusive upper bound of bucket `b` (the value the quantile queries
  /// report for samples landing in it).
  static constexpr std::uint64_t bucket_upper(std::size_t b) noexcept {
    return b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1;
  }

  /// Value at or below which at least a fraction `p` in (0, 1] of the
  /// samples fall. Reports the containing bucket's upper bound, clamped
  /// to the observed max (so percentile(1.0) == max(), exactly).
  std::uint64_t percentile(double p) const noexcept {
    if (count_ == 0) return 0;
    if (p <= 0.0) return min();
    if (p > 1.0) p = 1.0;
    // Smallest rank r (1-based) with r >= p * count.
    const double scaled = p * static_cast<double>(count_);
    std::uint64_t rank = static_cast<std::uint64_t>(scaled);
    if (static_cast<double>(rank) < scaled) rank += 1;
    if (rank == 0) rank = 1;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      cumulative += counts_[b];
      if (cumulative >= rank) {
        const std::uint64_t upper = bucket_upper(b);
        return upper < max_ ? upper : max_;
      }
    }
    return max_;
  }

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace hohtm::util
