#pragma once

#include <atomic>
#include <cstddef>

#include "util/backoff.hpp"

namespace hohtm::util {

/// Sense-reversing centralized barrier. Benchmark threads use it so that
/// timed regions start simultaneously; unlike std::barrier it spins (with
/// backoff) instead of blocking, which gives tighter start alignment for
/// short measured phases.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept
      : parties_(parties), remaining_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
      return;
    }
    Backoff backoff;
    while (sense_.load(std::memory_order_acquire) != my_sense) backoff.pause();
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace hohtm::util
