#pragma once

#include <cstddef>
#include <vector>

namespace hohtm::util {

/// Summary statistics over benchmark trials. The paper reports the average
/// of 5 trials and notes variance below 3%; `cv_percent` lets our harness
/// report the same stability metric.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;

  /// Coefficient of variation, in percent (stddev / mean * 100).
  double cv_percent() const noexcept;
};

Summary summarize(const std::vector<double>& samples) noexcept;

}  // namespace hohtm::util
