#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::util {

/// MetricsRegistry — the always-on metrics plane (docs/OBSERVABILITY.md).
///
/// Unlike the `HOHTM_TRACE`-gated trace/histogram layer, this plane is
/// compiled into every build: a production binary can always answer
/// "how many revocations, how big is the reclamation backlog, is a
/// thread stalled" without a rebuild. The cost model is therefore the
/// same as `tm::Stats`: per-thread, cache-line-padded counter cells
/// written only by their owner (a relaxed load + release store, no RMW),
/// aggregated lock-free by acquire-summing across the thread registry's
/// high-water mark. Registration (cold path) takes a mutex; the hot path
/// never does.
///
/// Three kinds of entries, all named:
///  - counters: monotonic per-thread cells; `total()` sums them. A
///    retired thread's cells stay in its registry slot, and a new thread
///    recycling the slot keeps adding, so totals never lose counts.
///  - gauges: pull functions sampled at snapshot time (e.g. the live
///    Gauge, per-scheme reclamation backlogs).
///  - sections: subsystem-owned JSON renderers (abort attribution, the
///    kv contention heatmap, the stall watchdog) spliced into the
///    snapshot document.
///
/// Export: `write_json()` / `snapshot_json()` produce one machine-
/// readable document (rendered by tools/metrics_report.py), and
/// `enable_env_dump()` arms an atexit hook that writes it to
/// `$HOHTM_METRICS_FILE` when that variable is set.
class MetricsRegistry {
 public:
  /// Fixed-capacity name tables: registration past the cap returns -1
  /// (and `add(-1)` is a no-op) rather than reallocating shared state
  /// under concurrent readers.
  static constexpr int kMaxMetrics = 64;
  static constexpr int kMaxGauges = 32;
  static constexpr int kMaxSections = 16;

  /// Registers (or finds) a named counter; idempotent by name. Returns
  /// the counter id, or -1 when the table is full. Cold path (mutex).
  static int counter(const char* name);

  /// Owner-thread bump: one relaxed load + release store into this
  /// thread's padded cell. Safe from any thread, any time; ids < 0 are
  /// ignored so callers can cache a failed registration harmlessly.
  static void add(int id, std::uint64_t n = 1) noexcept;

  /// Lock-free aggregate of one counter across all threads that ever
  /// ran (acquire loads, like `tm::Stats::total()`).
  static std::uint64_t total(int id) noexcept;

  using GaugeFn = std::int64_t (*)();
  /// Registers a pull-gauge sampled at snapshot time. Idempotent by
  /// name (the last registration wins). False when the table is full.
  static bool register_gauge(const char* name, GaugeFn fn);

  using SectionFn = void (*)(std::FILE*);
  /// Registers a JSON section renderer: `fn` must write exactly one
  /// JSON value (object or array). Idempotent by name.
  static bool register_section(const char* name, SectionFn fn);

  /// Writes the full snapshot document: {"counters":{...},
  /// "gauges":{...}, "sections":{...}}.
  static void write_json(std::FILE* out);

  /// `write_json` into a string (open_memstream).
  static std::string snapshot_json();

  /// Arms the atexit dump to `$HOHTM_METRICS_FILE` (idempotent). Called
  /// from the harness header emitters and kv::Service so every bench
  /// and serving binary honours the variable without per-main wiring.
  static void enable_env_dump();

  /// Test-only, quiescent-only: zero every per-thread counter cell.
  /// Registered names, gauges, and sections survive (process-global).
  static void reset_counters_for_testing() noexcept;

 private:
  struct Slots {
    std::atomic<std::uint64_t> v[kMaxMetrics];
  };
  // One padded cell block per thread-registry slot, written only by the
  // owning thread — the tm::Stats single-writer discipline.
  static inline CachePadded<Slots> slots_[kMaxThreads] = {};
};

}  // namespace hohtm::util
