#pragma once

// ThreadSanitizer happens-before annotations (docs/STATIC_ANALYSIS.md).
//
// Every shared-memory access in the TM goes through std::atomic /
// std::atomic_ref, so TSan can in principle derive every synchronizes-with
// edge itself.  Two things still warrant explicit wiring:
//
//  1. The backends order their *data* accesses against the *metadata*
//     checks with std::atomic_thread_fence (NOrec/TML value-or-clock
//     re-validation, TL2/TLEager check/load/re-check), and TSan does not
//     model fences (hence GCC's -Wtsan warning).  The code today pairs
//     every fence with an acquire load, so no report is produced — but
//     that cleanliness is incidental.  These wrappers pin the intended
//     edge to the object that carries it (seqlock, orec, quiescence slot,
//     reserved reference), so a future relaxation of a data access cannot
//     silently turn the suite red, and each annotation names the
//     happens-before argument in the source.
//
//  2. `ignore` scopes exist for deliberately unsynchronized diagnostics
//     reads (none in the library today; the API is here so the next one
//     is annotated rather than suppressed in a suppression file — the
//     tsan gate runs with no suppressions at all).
//
// Outside TSan builds every function is an empty inline: default builds
// contain no __tsan_* references, which scripts/check.sh verifies by
// inspecting the archive's undefined symbols.
//
// This header is the only place allowed to name the __tsan_* interface or
// the HOHTM_TSAN_ENABLED gate (enforced by tools/hohtm_lint.py's
// gated-hooks rule).

#if defined(__SANITIZE_THREAD__)  // GCC
#define HOHTM_TSAN_ENABLED 1
#elif defined(__has_feature)  // Clang
#if __has_feature(thread_sanitizer)
#define HOHTM_TSAN_ENABLED 1
#endif
#endif

#ifdef HOHTM_TSAN_ENABLED
extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
void __tsan_ignore_reads_begin(void);
void __tsan_ignore_reads_end(void);
}
#endif

namespace hohtm::tsan {

#ifdef HOHTM_TSAN_ENABLED
inline constexpr bool kTsanBuild = true;
#else
inline constexpr bool kTsanBuild = false;
#endif

/// Record an acquire edge on `addr`: everything the matching release-side
/// thread did before its `release(addr)` happens-before the code after
/// this call.  Mirrors an edge the protocol already establishes through
/// its atomics — never annotate an edge the code does not actually have,
/// or TSan will suppress real races downstream of it.
inline void acquire([[maybe_unused]] const void* addr) noexcept {
#ifdef HOHTM_TSAN_ENABLED
  __tsan_acquire(const_cast<void*>(addr));
#endif
}

/// Record the release side of the edge documented at `acquire`.
inline void release([[maybe_unused]] const void* addr) noexcept {
#ifdef HOHTM_TSAN_ENABLED
  __tsan_release(const_cast<void*>(addr));
#endif
}

/// RAII scope inside which TSan ignores this thread's *reads*: for
/// deliberately racy diagnostic loads whose value is never acted upon
/// (e.g. a monitoring probe of a gauge).  Writes are never ignored.
class IgnoreReadsScope {
 public:
  IgnoreReadsScope() noexcept {
#ifdef HOHTM_TSAN_ENABLED
    __tsan_ignore_reads_begin();
#endif
  }
  ~IgnoreReadsScope() {
#ifdef HOHTM_TSAN_ENABLED
    __tsan_ignore_reads_end();
#endif
  }
  IgnoreReadsScope(const IgnoreReadsScope&) = delete;
  IgnoreReadsScope& operator=(const IgnoreReadsScope&) = delete;
};

}  // namespace hohtm::tsan
