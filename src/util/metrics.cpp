#include "util/metrics.hpp"

#include <cstdlib>
#include <mutex>

namespace hohtm::util {

namespace {

// Registration tables live behind a Meyers singleton so cold-path
// registration from static initializers in other TUs is ordered safely.
struct Tables {
  std::mutex mu;
  int counter_count = 0;
  std::string counter_names[MetricsRegistry::kMaxMetrics];
  int gauge_count = 0;
  std::string gauge_names[MetricsRegistry::kMaxGauges];
  MetricsRegistry::GaugeFn gauge_fns[MetricsRegistry::kMaxGauges] = {};
  int section_count = 0;
  std::string section_names[MetricsRegistry::kMaxSections];
  MetricsRegistry::SectionFn section_fns[MetricsRegistry::kMaxSections] = {};
  bool env_dump_armed = false;
};

Tables& tables() {
  static Tables t;
  return t;
}

void json_escaped(std::FILE* out, const std::string& s) {
  std::fputc('"', out);
  for (const char c : s) {
    if (c == '"' || c == '\\') std::fprintf(out, "\\%c", c);
    else if (static_cast<unsigned char>(c) < 0x20)
      std::fprintf(out, "\\u%04x", static_cast<unsigned>(c));
    else
      std::fputc(c, out);
  }
  std::fputc('"', out);
}

void dump_to_env_file() {
  const char* path = std::getenv("HOHTM_METRICS_FILE");
  if (path == nullptr || *path == '\0') return;
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) return;
  MetricsRegistry::write_json(out);
  std::fclose(out);
  std::fprintf(stderr, "hohtm: metrics snapshot written to %s\n", path);
}

}  // namespace

int MetricsRegistry::counter(const char* name) {
  Tables& t = tables();
  std::lock_guard<std::mutex> lock(t.mu);
  for (int i = 0; i < t.counter_count; ++i)
    if (t.counter_names[i] == name) return i;
  if (t.counter_count >= kMaxMetrics) return -1;
  t.counter_names[t.counter_count] = name;
  return t.counter_count++;
}

void MetricsRegistry::add(int id, std::uint64_t n) noexcept {
  if (id < 0 || id >= kMaxMetrics) return;
  std::atomic<std::uint64_t>& cell =
      slots_[ThreadRegistry::slot()].value.v[id];
  cell.store(cell.load(std::memory_order_relaxed) + n,
             std::memory_order_release);
}

std::uint64_t MetricsRegistry::total(int id) noexcept {
  if (id < 0 || id >= kMaxMetrics) return 0;
  std::uint64_t sum = 0;
  const std::size_t threads = ThreadRegistry::high_watermark();
  for (std::size_t s = 0; s < threads; ++s)
    sum += slots_[s].value.v[id].load(std::memory_order_acquire);
  return sum;
}

bool MetricsRegistry::register_gauge(const char* name, GaugeFn fn) {
  Tables& t = tables();
  std::lock_guard<std::mutex> lock(t.mu);
  for (int i = 0; i < t.gauge_count; ++i) {
    if (t.gauge_names[i] == name) {
      t.gauge_fns[i] = fn;
      return true;
    }
  }
  if (t.gauge_count >= kMaxGauges) return false;
  t.gauge_names[t.gauge_count] = name;
  t.gauge_fns[t.gauge_count] = fn;
  ++t.gauge_count;
  return true;
}

bool MetricsRegistry::register_section(const char* name, SectionFn fn) {
  Tables& t = tables();
  std::lock_guard<std::mutex> lock(t.mu);
  for (int i = 0; i < t.section_count; ++i) {
    if (t.section_names[i] == name) {
      t.section_fns[i] = fn;
      return true;
    }
  }
  if (t.section_count >= kMaxSections) return false;
  t.section_names[t.section_count] = name;
  t.section_fns[t.section_count] = fn;
  ++t.section_count;
  return true;
}

void MetricsRegistry::write_json(std::FILE* out) {
  // Copy the name tables under the mutex, then render without it: a
  // section renderer may itself call back into the registry.
  Tables& t = tables();
  int counters;
  int gauges;
  int sections;
  std::string counter_names[kMaxMetrics];
  std::string gauge_names[kMaxGauges];
  GaugeFn gauge_fns[kMaxGauges];
  std::string section_names[kMaxSections];
  SectionFn section_fns[kMaxSections];
  {
    std::lock_guard<std::mutex> lock(t.mu);
    counters = t.counter_count;
    gauges = t.gauge_count;
    sections = t.section_count;
    for (int i = 0; i < counters; ++i) counter_names[i] = t.counter_names[i];
    for (int i = 0; i < gauges; ++i) {
      gauge_names[i] = t.gauge_names[i];
      gauge_fns[i] = t.gauge_fns[i];
    }
    for (int i = 0; i < sections; ++i) {
      section_names[i] = t.section_names[i];
      section_fns[i] = t.section_fns[i];
    }
  }

  std::fputs("{\n  \"counters\": {", out);
  for (int i = 0; i < counters; ++i) {
    std::fputs(i == 0 ? "\n    " : ",\n    ", out);
    json_escaped(out, counter_names[i]);
    std::fprintf(out, ": %llu",
                 static_cast<unsigned long long>(total(i)));
  }
  std::fputs(counters == 0 ? "},\n" : "\n  },\n", out);

  std::fputs("  \"gauges\": {", out);
  for (int i = 0; i < gauges; ++i) {
    std::fputs(i == 0 ? "\n    " : ",\n    ", out);
    json_escaped(out, gauge_names[i]);
    std::fprintf(out, ": %lld",
                 static_cast<long long>(gauge_fns[i] != nullptr
                                            ? gauge_fns[i]()
                                            : 0));
  }
  std::fputs(gauges == 0 ? "},\n" : "\n  },\n", out);

  std::fputs("  \"sections\": {", out);
  for (int i = 0; i < sections; ++i) {
    std::fputs(i == 0 ? "\n    " : ",\n    ", out);
    json_escaped(out, section_names[i]);
    std::fputs(": ", out);
    if (section_fns[i] != nullptr)
      section_fns[i](out);
    else
      std::fputs("null", out);
  }
  std::fputs(sections == 0 ? "}\n" : "\n  }\n", out);
  std::fputs("}\n", out);
}

std::string MetricsRegistry::snapshot_json() {
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* mem = open_memstream(&buf, &len);
  if (mem == nullptr) return {};
  write_json(mem);
  std::fclose(mem);
  std::string result(buf, len);
  std::free(buf);
  return result;
}

void MetricsRegistry::enable_env_dump() {
  Tables& t = tables();
  std::lock_guard<std::mutex> lock(t.mu);
  if (t.env_dump_armed) return;
  t.env_dump_armed = true;
  std::atexit(dump_to_env_file);
}

void MetricsRegistry::reset_counters_for_testing() noexcept {
  for (auto& padded : slots_)
    for (auto& cell : padded.value.v)
      cell.store(0, std::memory_order_release);
}

}  // namespace hohtm::util
