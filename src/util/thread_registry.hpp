#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace hohtm::util {

/// Maximum number of threads that may simultaneously use the library's
/// per-thread-slot facilities (TM quiescence, revocable reservations,
/// hazard pointers). Fixed-size arrays of this length keep the hot paths
/// index-based and allocation-free.
inline constexpr std::size_t kMaxThreads = 64;

/// Dense thread-id registry. Every thread that touches the TM gets a small
/// integer slot in [0, kMaxThreads); slots are recycled when threads exit
/// (via a thread_local guard), so long test suites that create and join
/// many short-lived threads do not exhaust the space.
///
/// This is the `Register()` operation the paper attaches to every revocable
/// reservation implementation, hoisted to a process-wide service so that
/// TM backends and reservation objects agree on thread identity.
class ThreadRegistry {
 public:
  /// Slot of the calling thread, registering it on first use.
  static std::size_t slot();

  /// Generation stamp of the calling thread: unique per thread lifetime,
  /// never reused, never zero. Slots ARE reused after a thread exits, so
  /// per-slot caches (reservation nodes, etc.) compare this stamp to
  /// detect that their slot was inherited from a dead thread.
  static std::uint64_t generation();

  /// Number of slots that have ever been handed out and may still be live.
  /// Used by O(T) scans (quiescence, RR-FA revocation fallback paths).
  static std::size_t high_watermark() noexcept;

  ThreadRegistry() = delete;
};

}  // namespace hohtm::util
