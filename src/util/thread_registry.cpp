#include "util/thread_registry.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/cacheline.hpp"

namespace hohtm::util {
namespace {

struct Slots {
  std::mutex mu;
  bool in_use[kMaxThreads] = {};
  std::atomic<std::size_t> watermark{0};
  std::atomic<std::uint64_t> next_generation{1};  // 0 = "never seen"
};

Slots& slots() {
  static Slots s;
  return s;
}

std::size_t acquire_slot() {
  Slots& s = slots();
  std::lock_guard<std::mutex> lock(s.mu);
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    if (!s.in_use[i]) {
      s.in_use[i] = true;
      std::size_t wm = s.watermark.load(std::memory_order_relaxed);
      if (i + 1 > wm) s.watermark.store(i + 1, std::memory_order_relaxed);
      return i;
    }
  }
  std::fprintf(stderr, "hohtm: more than %zu concurrent threads\n", kMaxThreads);
  std::abort();
}

void release_slot(std::size_t slot) {
  Slots& s = slots();
  std::lock_guard<std::mutex> lock(s.mu);
  s.in_use[slot] = false;
}

/// RAII guard: slot is acquired lazily on first use and returned when the
/// thread exits (thread_local destructor).
struct SlotGuard {
  std::size_t slot = acquire_slot();
  std::uint64_t generation =
      slots().next_generation.fetch_add(1, std::memory_order_relaxed);
  ~SlotGuard() { release_slot(slot); }
};

SlotGuard& guard() {
  thread_local SlotGuard g;
  return g;
}

}  // namespace

std::size_t ThreadRegistry::slot() { return guard().slot; }

std::uint64_t ThreadRegistry::generation() { return guard().generation; }

std::size_t ThreadRegistry::high_watermark() noexcept {
  return slots().watermark.load(std::memory_order_acquire);
}

}  // namespace hohtm::util
