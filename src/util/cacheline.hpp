#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace hohtm::util {

/// Size of a destructive-interference region. We hard-code 64 rather than
/// using std::hardware_destructive_interference_size because the latter is
/// an ABI hazard (GCC warns) and 64 is correct on every x86/ARM server part
/// this library targets.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a value so that it occupies (at least) its own cache line.
/// Used for per-thread slots in shared arrays (reservation metadata,
/// quiescence timestamps, hazard-pointer slots) so that one thread's writes
/// never falsely invalidate a neighbour's line — the paper's RR algorithms
/// assume "each thread's node is in a separate cache line" (Section 3.1).
template <class T>
struct alignas(kCacheLineSize) CachePadded {
  T value{};

  CachePadded() = default;
  template <class... Args>
  explicit CachePadded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(sizeof(CachePadded<char>) == kCacheLineSize);
static_assert(alignof(CachePadded<char>) == kCacheLineSize);

}  // namespace hohtm::util
