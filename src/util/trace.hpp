#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "util/cacheline.hpp"
#include "util/histogram.hpp"
#include "util/thread_registry.hpp"

namespace hohtm::util {

/// Compile-time master switch for the hot-path instrumentation hooks.
/// Set by the HOHTM_TRACE CMake option. When false, every hook below is
/// an empty inline function (the `if constexpr` discards its body), so
/// instrumented call sites compile to exactly the pre-instrumentation
/// code: no clock reads, no atomic ops, no branches. The *machinery*
/// (ring buffers, histograms, drain) is always compiled, so it stays
/// unit-testable in every build; only the hooks are gated.
#ifdef HOHTM_TRACE_ENABLED
inline constexpr bool kTraceBuild = true;
#else
inline constexpr bool kTraceBuild = false;
#endif

/// Event taxonomy. One byte per event; the names are stable identifiers
/// used verbatim in the Chrome/Perfetto trace JSON and tools/
/// trace_report.py (see docs/OBSERVABILITY.md for the payload of each).
enum class Ev : std::uint8_t {
  kTxBegin = 0,    // arg: 0 speculative, 1 serial-irrevocable
  kTxCommit,       // arg: commit latency in ns (0 outside trace builds)
  kTxAbort,        // arg: tm::AbortCause index
  kTxSerial,       // retry budget exhausted; escalating to serial mode
  kRrReserve,      // arg: reserved Ref
  kRrGet,          // arg: returned Ref (0 = nil)
  kRrRevoke,       // arg: revoked Ref
  kQuiesceEnter,   // a committer starts waiting for in-flight readers
  kQuiesceExit,    // arg: stall time in ns
  kAlloc,          // arg: payload bytes
  kFree,           // arg: freed pointer
  kRetire,         // arg: retired pointer (hazard/epoch deferred free)
  kScan,           // arg: nodes freed by this hazard scan
  kEpochAdvance,   // arg: the new global epoch
  kKvOpStart,      // arg: kv::OpCode index (get/put/del/scan)
  kKvOpDone,       // arg: kv::OpCode index; the op's last tx committed
  kKvMigrate,      // arg: old-table bucket index whose migration finished
  kKvTableSwap,    // arg: log2 bucket count of the freshly installed table
  kKvTableFree,    // arg: bucket count of the precisely freed old table
  kFusedWindow,    // arg: window boundaries elided by the committed tx
  kFusionFallback, // a fused attempt aborted; op retreats to small windows
  kRrLossAttr,     // a reservation loss was attributed: arg packs
                   // aborter slot | site << 8 | known << 16
  kKvScanWindow,   // arg: entries emitted by the committed scan window
  kKvScanResume,   // a scan lost its parked cursor and reseeked from the
                   // remembered (hash, key) position
};
inline constexpr std::size_t kEvCount = 24;
inline constexpr const char* kEvNames[kEvCount] = {
    "tx_begin",      "tx_commit", "tx_abort", "tx_serial",    "rr_reserve",
    "rr_get",        "rr_revoke", "quiesce_enter", "quiesce_exit", "alloc",
    "free",          "retire",    "scan",     "epoch_advance",
    "kv_op_start",   "kv_op_done", "kv_migrate", "kv_table_swap",
    "kv_table_free", "fused_window", "fusion_fallback", "rr_loss_attr",
    "kv_scan_window", "kv_scan_resume"};

/// One compact trace record. 24 bytes; a thread's ring is a plain array
/// of these, written only by its owner.
struct TraceRecord {
  std::uint64_t ts;   // timestamp from the (injectable) trace clock, ns
  std::uint64_t arg;  // event-specific payload (see Ev)
  std::uint32_t tid;  // dense ThreadRegistry slot
  Ev kind;
};

/// Per-thread, cache-padded, fixed-capacity event rings.
///
/// Each ring keeps the *last* kCapacity events of its thread (overwrite-
/// oldest), so tracing an arbitrarily long run costs fixed memory and the
/// drain shows the end of the story — the part a post-mortem wants.
///
/// Writers never synchronize: a slot's ring is touched only by the thread
/// owning that slot. Draining, resetting, and clock swaps are therefore
/// only safe at quiescent points (no instrumented thread running), the
/// same contract tm::Stats::reset() already imposes. Benches drain at
/// exit; tests drain after joining their threads.
class Trace {
 public:
  using ClockFn = std::uint64_t (*)();
  static constexpr std::size_t kCapacity = 1024;  // per thread, power of two

  /// Current trace timestamp. Defaults to steady_clock nanoseconds;
  /// tests inject a deterministic source with set_clock.
  static std::uint64_t now() noexcept { return clock_(); }

  /// Replace the timestamp source (nullptr restores steady_clock).
  /// Quiescent-only, like drain/reset.
  static void set_clock(ClockFn fn) noexcept;

  /// Runtime master switch (cheap relaxed load in record). Lets a bench
  /// scope tracing to its timed phase without rebuilding.
  static void set_active(bool on) noexcept {
    active_.store(on, std::memory_order_relaxed);
  }
  static bool active() noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  static void record(Ev kind, std::uint64_t arg = 0) noexcept {
    if (!active()) return;
    const std::size_t slot = ThreadRegistry::slot();
    Ring& ring = rings_[slot].value;
    TraceRecord& r = ring.events[ring.next & (kCapacity - 1)];
    r.ts = now();
    r.arg = arg;
    r.tid = static_cast<std::uint32_t>(slot);
    r.kind = kind;
    ring.next += 1;
  }

  /// Number of retained events across all rings.
  static std::size_t size() noexcept;

  /// Events overwritten because rings wrapped.
  static std::uint64_t dropped() noexcept;

  /// Retained events, globally sorted by timestamp. Quiescent-only.
  static std::vector<TraceRecord> snapshot();

  /// Drain as a Chrome/Perfetto trace-event JSON array (instant events,
  /// microsecond timestamps). Quiescent-only; does not clear the rings.
  static void drain_json(std::FILE* out);

  /// Clear every ring. Quiescent-only.
  static void reset() noexcept;

 private:
  struct Ring {
    TraceRecord events[kCapacity];
    std::uint64_t next;  // total records ever written by this slot
  };

  static std::uint64_t steady_now() noexcept;

  static inline CachePadded<Ring> rings_[kMaxThreads];
  static inline std::atomic<ClockFn> clock_fn_{nullptr};
  static inline std::atomic<bool> active_{true};

  static std::uint64_t clock_() noexcept {
    const ClockFn fn = clock_fn_.load(std::memory_order_relaxed);
    return fn != nullptr ? fn() : steady_now();
  }
};

/// The three latency distributions the paper-style evaluation needs:
/// how long commits take, how long an aborted attempt waits before
/// retrying, and how long committers stall in the quiescence fence.
/// All in nanoseconds of the trace clock.
struct LatencyHistograms {
  Histogram commit_ns;
  Histogram retry_ns;
  Histogram quiesce_ns;

  void merge(const LatencyHistograms& other) noexcept {
    commit_ns.merge(other.commit_ns);
    retry_ns.merge(other.retry_ns);
    quiesce_ns.merge(other.quiesce_ns);
  }
  void reset() noexcept {
    commit_ns.reset();
    retry_ns.reset();
    quiesce_ns.reset();
  }
};

/// Per-thread latency histograms, aggregated exactly like tm::Stats:
/// each slot written only by its owner, total() summed at quiescent
/// points, reset() only while no instrumented thread runs.
class Metrics {
 public:
  static LatencyHistograms& mine() noexcept {
    return slots_[ThreadRegistry::slot()].value;
  }

  static LatencyHistograms total() noexcept {
    LatencyHistograms sum;
    const std::size_t n = ThreadRegistry::high_watermark();
    for (std::size_t i = 0; i < n; ++i) sum.merge(slots_[i].value);
    return sum;
  }

  static void reset() noexcept {
    for (auto& s : slots_) s.value.reset();
  }

 private:
  static inline CachePadded<LatencyHistograms> slots_[kMaxThreads];
};

// ---------------------------------------------------------------------------
// Hot-path hooks. Call these from instrumented code; they vanish in
// non-trace builds (empty inline functions — see kTraceBuild above).
// ---------------------------------------------------------------------------

inline void trace_event(Ev kind, std::uint64_t arg = 0) noexcept {
  if constexpr (kTraceBuild) Trace::record(kind, arg);
}

/// Start timestamp for a latency measurement; 0 (and no clock read) in
/// non-trace builds.
inline std::uint64_t trace_clock() noexcept {
  if constexpr (kTraceBuild) return Trace::now();
  return 0;
}

/// A transaction attempt that began at `t0` just committed.
inline void trace_tx_commit(std::uint64_t t0) noexcept {
  if constexpr (kTraceBuild) {
    const std::uint64_t latency = Trace::now() - t0;
    Metrics::mine().commit_ns.record(latency);
    Trace::record(Ev::kTxCommit, latency);
  }
}

/// An aborted attempt finished its backoff pause that began at `t0`.
inline void trace_tx_retry_pause(std::uint64_t t0) noexcept {
  if constexpr (kTraceBuild) Metrics::mine().retry_ns.record(Trace::now() - t0);
}

/// A committer with pending frees starts waiting on the quiescence
/// fence; returns the stall start time (0 in non-trace builds).
inline std::uint64_t trace_quiesce_enter() noexcept {
  if constexpr (kTraceBuild) {
    Trace::record(Ev::kQuiesceEnter);
    return Trace::now();
  }
  return 0;
}

inline void trace_quiesce_exit(std::uint64_t t0) noexcept {
  if constexpr (kTraceBuild) {
    const std::uint64_t stall = Trace::now() - t0;
    Metrics::mine().quiesce_ns.record(stall);
    Trace::record(Ev::kQuiesceExit, stall);
  }
}

}  // namespace hohtm::util
