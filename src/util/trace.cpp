#include "util/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdlib>

namespace hohtm::util {

std::uint64_t Trace::steady_now() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Trace::set_clock(ClockFn fn) noexcept {
  clock_fn_.store(fn, std::memory_order_relaxed);
}

std::size_t Trace::size() noexcept {
  std::size_t total = 0;
  const std::size_t n = ThreadRegistry::high_watermark();
  for (std::size_t i = 0; i < n; ++i)
    total += static_cast<std::size_t>(
        std::min<std::uint64_t>(rings_[i].value.next, kCapacity));
  return total;
}

std::uint64_t Trace::dropped() noexcept {
  std::uint64_t total = 0;
  const std::size_t n = ThreadRegistry::high_watermark();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t next = rings_[i].value.next;
    if (next > kCapacity) total += next - kCapacity;
  }
  return total;
}

std::vector<TraceRecord> Trace::snapshot() {
  std::vector<TraceRecord> out;
  out.reserve(size());
  const std::size_t n = ThreadRegistry::high_watermark();
  for (std::size_t i = 0; i < n; ++i) {
    const Ring& ring = rings_[i].value;
    const std::uint64_t count = std::min<std::uint64_t>(ring.next, kCapacity);
    for (std::uint64_t k = ring.next - count; k < ring.next; ++k)
      out.push_back(ring.events[k & (kCapacity - 1)]);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.ts < b.ts;
                   });
  return out;
}

void Trace::drain_json(std::FILE* out) {
  const std::vector<TraceRecord> events = snapshot();
  std::fputs("[\n", out);
  bool first = true;
  for (const TraceRecord& e : events) {
    if (!first) std::fputs(",\n", out);
    first = false;
    // Chrome trace-event format: instant events, ts in microseconds.
    std::fprintf(out,
                 "{\"name\":\"%s\",\"cat\":\"hohtm\",\"ph\":\"i\",\"s\":\"t\","
                 "\"pid\":0,\"tid\":%" PRIu32 ",\"ts\":%.3f,"
                 "\"args\":{\"v\":%" PRIu64 "}}",
                 kEvNames[static_cast<std::size_t>(e.kind)], e.tid,
                 static_cast<double>(e.ts) / 1000.0, e.arg);
  }
  std::fputs("\n]\n", out);
}

void Trace::reset() noexcept {
  for (auto& ring : rings_) ring.value.next = 0;
}

#ifdef HOHTM_TRACE_ENABLED
namespace {
/// Trace builds honor HOHTM_TRACE_FILE: if set, the retained events are
/// drained to it as Chrome trace JSON when the process exits (after main
/// returns all worker threads are joined, so the drain is quiescent).
struct TraceFileAtExit {
  TraceFileAtExit() {
    std::atexit([] {
      const char* path = std::getenv("HOHTM_TRACE_FILE");
      if (path == nullptr || path[0] == '\0') return;
      if (std::FILE* f = std::fopen(path, "w")) {
        Trace::drain_json(f);
        std::fclose(f);
      }
    });
  }
};
const TraceFileAtExit g_trace_file_at_exit;
}  // namespace
#endif

}  // namespace hohtm::util
