#pragma once

#include <cstdint>

namespace hohtm::util {

/// SplitMix64: used to seed the main generator and to hash thread ids into
/// well-distributed starting states. Reference: Steele, Lea, Flood (2014).
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256**: fast, high-quality, allocation-free PRNG for workload
/// generation on the benchmark fast path. Not cryptographic.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). Uses the widening-multiply trick; bias is
  /// negligible for the bounds used in this project (< 2^32).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Value in [lo, hi] inclusive.
  constexpr std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  // Satisfy UniformRandomBitGenerator so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  constexpr result_type operator()() noexcept { return next(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace hohtm::util
