#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hohtm::util {

double Summary::cv_percent() const noexcept {
  return mean == 0.0 ? 0.0 : stddev / mean * 100.0;
}

Summary summarize(const std::vector<double>& samples) noexcept {
  Summary s;
  s.n = samples.size();
  if (s.n == 0) return s;
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double sq = 0.0;
    for (double v : samples) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(s.n - 1));
  }
  return s;
}

}  // namespace hohtm::util
