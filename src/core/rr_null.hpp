#pragma once

#include "core/rr_common.hpp"

namespace hohtm::rr {

/// RR-Null — the no-op reservation.
///
/// Get always returns nil, so a hand-over-hand traversal always restarts
/// from the root; combined with an unbounded window this turns the
/// HOH data-structure templates into the paper's "HTM" baseline, where
/// every operation is one big transaction. Not a real reservation
/// implementation (kReal == false): data structures must not rely on
/// reservations persisting when instantiated with it.
template <class TM>
class RrNull {
 public:
  using Tx = typename TM::Tx;
  static constexpr bool kStrict = false;
  static constexpr bool kReal = false;
  static constexpr const char* name() noexcept { return "RR-Null"; }

  void register_thread(Tx&) {}
  void reserve(Tx&, Ref) {}
  void release(Tx&) {}
  Ref get(Tx&) { return nullptr; }
  // No reservation exists to invalidate, but the *event* is still tallied
  // so the baseline's telemetry columns stay comparable with the real
  // reservation series (same removes => same revocation counts).
  void revoke(Tx&, Ref) { note_revocation(); }
};

}  // namespace hohtm::rr
