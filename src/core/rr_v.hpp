#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/rr_common.hpp"
#include "util/cacheline.hpp"

namespace hohtm::rr {

/// RR-V — versioned reservations (paper Listing 4).
///
/// The ownership array is replaced by an array of counters that act like
/// STM ownership records (the paper cites TL2). Reserve snapshots the
/// counter for the reference; Get checks the counter is unchanged; Revoke
/// increments it. All operations are O(1), Reserve writes no shared
/// memory, and any number of threads may hold reservations on the same
/// reference simultaneously — the strongest combination in the relaxed
/// family, and (with RR-XO) the best performer in the paper's Figures.
///
/// Relaxed: a Revoke of a *different* reference that hashes to the same
/// counter spuriously invalidates the reservation.
template <class TM>
class RrV {
 public:
  using Tx = typename TM::Tx;
  static constexpr bool kStrict = false;
  static constexpr bool kReal = true;
  static constexpr const char* name() noexcept { return "RR-V"; }

  explicit RrV(std::size_t log2_slots = 12)
      : log2_slots_(log2_slots), versions_(std::size_t{1} << log2_slots, 0) {}

  RrV(const RrV&) = delete;
  RrV& operator=(const RrV&) = delete;

  void register_thread(Tx& tx) {
    if (generations_.is_registered(tx)) return;
    tx.write(mine().ref, static_cast<Ref>(nullptr));
    generations_.mark_registered(tx);
  }

  /// Reads (but does not write) the shared counter: concurrent Reserves
  /// of the same reference never conflict with each other.
  void reserve(Tx& tx, Ref ref) {
    note_reserve(ref);
    tx.write(mine().version, tx.read(versions_[slot_of(ref)]));
    tx.write(mine().ref, ref);
  }

  void release(Tx& tx) { tx.write(mine().ref, static_cast<Ref>(nullptr)); }

  Ref get(Tx& tx) {
    const Ref ref = tx.read(mine().ref);
    if (ref == nullptr ||
        tx.read(versions_[slot_of(ref)]) != tx.read(mine().version)) {
      note_get(nullptr);
      return nullptr;
    }
    note_get(ref);
    return ref;
  }

  void revoke(Tx& tx, Ref ref) {
    note_revocation(ref);
    if (mutation_drops_revoke()) return;
    auto& counter = versions_[slot_of(ref)];
    tx.write(counter, tx.read(counter) + 1);
  }

 private:
  struct Cell {
    Ref ref = nullptr;
    std::uint64_t version = 0;
  };

  std::size_t slot_of(Ref ref) const noexcept {
    return hash_ref(ref, log2_slots_);
  }

  Cell& mine() noexcept { return cells_[util::ThreadRegistry::slot()].value; }

  std::size_t log2_slots_;
  std::vector<std::uint64_t> versions_;
  util::CachePadded<Cell> cells_[util::kMaxThreads];
  SlotGenerations generations_;
};

}  // namespace hohtm::rr
