#pragma once

#include "alloc/object.hpp"
#include "core/rr_common.hpp"
#include "reclaim/gauge.hpp"
#include "util/cacheline.hpp"

namespace hohtm::rr {

/// RR-FA — fully associative reservations (paper Listing 2).
///
/// A global linked list holds one node per registered thread; the node
/// stores that thread's current reservation. Reserve/Release/Get are O(1)
/// accesses to the thread's own node; Revoke walks the whole list — O(T) —
/// and clears every node holding the revoked reference.
///
/// Strict: Get returns nil only after a Release or a Revoke of the exact
/// reserved reference. The O(T) Revoke also conflicts with any concurrent
/// Reserve/Release it passes over, which is the scalability cost Figure 2
/// quantifies.
template <class TM>
class RrFa {
 public:
  using Tx = typename TM::Tx;
  static constexpr bool kStrict = true;
  static constexpr bool kReal = true;
  static constexpr const char* name() noexcept { return "RR-FA"; }

  RrFa() = default;
  RrFa(const RrFa&) = delete;
  RrFa& operator=(const RrFa&) = delete;

  ~RrFa() {
    // Destruction races with nothing (clients destroy the owning data
    // structure only once all threads are done with it).
    ThreadNode* n = head_;
    while (n != nullptr) {
      ThreadNode* next = n->next;
      alloc::destroy(n);
      reclaim::Gauge::on_free();
      n = next;
    }
  }

  /// Idempotent per thread lifetime. Appends a node on first ever use of
  /// this slot; scrubs the node when the slot was inherited from an
  /// exited thread.
  void register_thread(Tx& tx) {
    if (generations_.is_registered(tx)) return;
    auto& mine = mine_[util::ThreadRegistry::slot()].value;
    ThreadNode* node = tx.read(mine);
    if (node == nullptr) {
      node = tx.template alloc<ThreadNode>();
      tx.write(node->value, static_cast<Ref>(nullptr));
      tx.write(node->next, tx.read(head_));
      tx.write(head_, node);
      tx.write(mine, node);
    } else {
      tx.write(node->value, static_cast<Ref>(nullptr));  // stale reservation
    }
    generations_.mark_registered(tx);
  }

  void reserve(Tx& tx, Ref ref) {
    note_reserve(ref);
    tx.write(mine(tx)->value, ref);
  }

  void release(Tx& tx) {
    tx.write(mine(tx)->value, static_cast<Ref>(nullptr));
  }

  Ref get(Tx& tx) {
    const Ref ref = tx.read(mine(tx)->value);
    note_get(ref);
    return ref;
  }

  void revoke(Tx& tx, Ref ref) {
    note_revocation(ref);
    for (ThreadNode* n = tx.read(head_); n != nullptr; n = tx.read(n->next)) {
      if (tx.read(n->value) == ref)
        tx.write(n->value, static_cast<Ref>(nullptr));
    }
  }

  /// Number of nodes currently in the list (test/diagnostic helper).
  std::size_t registered_count(Tx& tx) {
    std::size_t count = 0;
    for (ThreadNode* n = tx.read(head_); n != nullptr; n = tx.read(n->next))
      ++count;
    return count;
  }

  /// Gauge-counted objects this algorithm currently owns (one node per
  /// slot that ever registered). Quiescent-only: callers must know no
  /// thread is mid-transaction, exactly as the destructor does.
  std::size_t gauge_owned() const noexcept {
    std::size_t count = 0;
    for (const auto& cell : mine_)
      if (cell.value != nullptr) ++count;
    return count;
  }

 private:
  /// One list node per thread, padded: the paper notes Reserve/Release/Get
  /// avoid false conflicts "as long as each thread's node is in a separate
  /// cache line".
  struct alignas(util::kCacheLineSize) ThreadNode {
    Ref value = nullptr;
    ThreadNode* next = nullptr;
  };

  ThreadNode* mine(Tx& tx) {
    return tx.read(mine_[util::ThreadRegistry::slot()].value);
  }

  ThreadNode* head_ = nullptr;
  util::CachePadded<ThreadNode*> mine_[util::kMaxThreads];
  SlotGenerations generations_;
};

}  // namespace hohtm::rr
