#pragma once

/// Umbrella header for revocable reservations — the paper's primary
/// contribution (Sections 2 and 3).
///
/// A revocable reservation lets one transaction *reserve* a node, commit,
/// and have a later transaction *get* the node back — unless some other
/// thread *revoked* it in between (because it removed and freed the node).
/// Six implementations trade off Revoke cost against Reserve/Release
/// conflict rates:
///
///   strict  : RrFa   (list scan Revoke, O(T))
///             RrDm   (hash bucket Revoke)
///             RrSa   (A bucket arrays)
///   relaxed : RrXo   (ownership stamps, O(1) Revoke)
///             RrSo   (A ownership arrays)
///             RrV    (version counters, O(1) everything)
///
/// plus RrNull (no-op) to express single-transaction baselines.

#include "core/rr_bucketed.hpp"
#include "core/rr_common.hpp"
#include "core/rr_fa.hpp"
#include "core/rr_null.hpp"
#include "core/rr_so.hpp"
#include "core/rr_v.hpp"
#include "core/rr_xo.hpp"

namespace hohtm::rr {

static_assert(Reservation<RrFa<tm::Norec>, tm::Norec>);
static_assert(Reservation<RrDm<tm::Norec>, tm::Norec>);
static_assert(Reservation<RrSa<tm::Norec>, tm::Norec>);
static_assert(Reservation<RrXo<tm::Norec>, tm::Norec>);
static_assert(Reservation<RrSo<tm::Norec>, tm::Norec>);
static_assert(Reservation<RrV<tm::Norec>, tm::Norec>);
static_assert(Reservation<RrNull<tm::Norec>, tm::Norec>);

}  // namespace hohtm::rr
