#pragma once

#include <concepts>
#include <cstdint>

#include "sched/schedpoint.hpp"
#include "tm/tm.hpp"
#include "util/cacheline.hpp"
#include "util/thread_registry.hpp"
#include "util/trace.hpp"
#include "util/tsan.hpp"

namespace hohtm::rr {

/// A *reference* is an opaque pointer to a node of some client data
/// structure. Reservations never dereference it — they only store, compare,
/// and return it — which is exactly what lets a reserved node be freed.
using Ref = const void*;

/// Multiplicative pointer hash used by the hash-indexed reservation
/// algorithms (RR-DM/SA map references to bucket lists; RR-XO/SO/V map
/// them to metadata slots). Low bits are dropped first: node allocations
/// are at least 16-byte aligned, so they carry no entropy.
inline std::size_t hash_ref(Ref ref, std::size_t log2_buckets) noexcept {
  if (log2_buckets == 0) return 0;  // a 64-bit shift would be UB
  auto key = reinterpret_cast<std::uintptr_t>(ref) >> 4;
  key *= 0x9E3779B97F4A7C15ULL;
  return static_cast<std::size_t>(key >> (64 - log2_buckets));
}

/// Compile-time contract for a revocable-reservation implementation.
/// All five methods must be called from inside a transaction (they take
/// the Tx); the sequential specification is Listing 1 of the paper.
///
/// Traits:
///  - kStrict: Get returns nil only if the reservation was released or the
///    reserved reference revoked (Section 3.1). Relaxed implementations
///    (kStrict == false) may return nil spuriously (Section 3.2), which
///    forbids the doubly-linked-list remove optimization.
///  - kReal: false only for RrNull, the no-op used to express the
///    single-big-transaction baseline through the same data-structure code.
template <class R, class TM>
concept Reservation =
    tm::TMBackend<TM> && requires(R r, typename TM::Tx& tx, Ref ref) {
      { r.register_thread(tx) };
      { r.reserve(tx, ref) };
      { r.release(tx) };
      { r.get(tx) } -> std::same_as<Ref>;
      { r.revoke(tx, ref) };
      { R::kStrict } -> std::convertible_to<bool>;
      { R::kReal } -> std::convertible_to<bool>;
      { R::name() } -> std::convertible_to<const char*>;
    };

/// The calling thread's current revocation site, maintained by SiteScope
/// RAII guards around each revoking operation (kv put/del/migration,
/// list removes). Read by note_revocation when it stamps the board.
inline tm::RevokeSite& current_revoke_site() noexcept {
  thread_local tm::RevokeSite site = tm::RevokeSite::kUnknown;
  return site;
}

/// Scoped revocation-site marker: `SiteScope scope(RevokeSite::kKvDelete)`
/// makes every revocation issued on this thread within the scope carry
/// that site in its attribution record. Nesting restores the outer site.
class SiteScope {
 public:
  explicit SiteScope(tm::RevokeSite site) noexcept
      : previous_(current_revoke_site()) {
    current_revoke_site() = site;
  }
  ~SiteScope() { current_revoke_site() = previous_; }
  SiteScope(const SiteScope&) = delete;
  SiteScope& operator=(const SiteScope&) = delete;

 private:
  tm::RevokeSite previous_;
};

/// What a victim learns about the revocation that cost it its parked
/// reference: the revoker's thread-registry slot and site, or
/// `known == false` when no (matching) record exists — e.g. the loss came
/// from a table growth changing hash widths, or the record was already
/// overwritten by a later revocation hashing to the same board entry.
struct Attribution {
  int slot = -1;
  unsigned site = 0;  // indexes tm::RevokeSite
  bool known = false;
};

/// RevocationBoard: the aborter→victim identity channel behind causal
/// abort attribution ("who aborted whom", docs/OBSERVABILITY.md).
///
/// A fixed hash-indexed array of single-word records. A revoker *publishes*
/// (fingerprint of the revoked ref, its own slot, its SiteScope site) with
/// one release store in `note_revocation`; a victim that later observes its
/// reservation gone *attributes* the loss with one acquire load, accepting
/// the record only when the fingerprint matches its parked ref. Records
/// are never cleared in production: a later revocation of a colliding ref
/// simply overwrites, and a stale same-ref record yields (rare, harmless)
/// misattribution — the per-aborter buckets stay exact in *sum* because
/// every loss increments exactly one bucket (see tm::StatCounters).
class RevocationBoard {
 public:
  static constexpr std::size_t kLog2Entries = 8;

  static void publish(Ref ref, unsigned site) noexcept {
    if (ref == nullptr) return;
    entries_[hash_ref(ref, kLog2Entries)].value.store(
        pack(ref, site, util::ThreadRegistry::slot()),
        std::memory_order_release);
  }

  static Attribution attribute(Ref ref) noexcept {
    if (ref == nullptr) return {};
    const std::uint64_t record =
        entries_[hash_ref(ref, kLog2Entries)].value.load(
            std::memory_order_acquire);
    if (record == 0 || (record >> 16) != fingerprint(ref)) return {};
    return Attribution{static_cast<int>((record & 0xFF) - 1),
                       static_cast<unsigned>((record >> 8) & 0xFF), true};
  }

  /// Quiescent-only (sched scenarios, tests): forget all records so a
  /// fresh schedule cannot inherit a previous schedule's attributions.
  static void reset_for_testing() noexcept {
    for (auto& entry : entries_)
      entry.value.store(0, std::memory_order_release);
  }

 private:
  // Record layout: [63:16] ref fingerprint, [15:8] site, [7:0] slot + 1
  // (so an all-zero word is unambiguously "empty").
  static std::uint64_t fingerprint(Ref ref) noexcept {
    return (reinterpret_cast<std::uintptr_t>(ref) >> 4) & 0xFFFFFFFFFFFFULL;
  }
  static std::uint64_t pack(Ref ref, unsigned site,
                            std::size_t slot) noexcept {
    return (fingerprint(ref) << 16) |
           (static_cast<std::uint64_t>(site & 0xFF) << 8) |
           ((slot + 1) & 0xFF);
  }

  static inline util::CachePadded<std::atomic<std::uint64_t>>
      entries_[std::size_t{1} << kLog2Entries] = {};
};

/// Tally one performed revocation on the calling thread's telemetry
/// (tm::Stats abort-cause taxonomy). Every Revoke implementation calls
/// this. Counted at the call, not at commit, so an aborted transaction
/// that re-executes its Revoke counts each attempt — the same convention
/// the TM backends use for abort causes (and the trace events below).
/// Also publishes the revoker's identity to the RevocationBoard (skipped
/// under the kDropAborterId mutant, which the sched attribution tests
/// must catch via the victim-side invariant).
inline void note_revocation(Ref ref = nullptr) noexcept {
  sched::point(sched::Op::kRrRevoke, ref);
  // The revoker's unlink of `ref` happens-before the node's free (which
  // its own commit gates behind quiescence); mirrored per-node for TSan
  // so a report on freed node memory names the reservation choreography.
  tsan::release(ref);
  if (!sched::mutate(sched::Mutation::kDropAborterId))
    RevocationBoard::publish(
        ref, static_cast<unsigned>(current_revoke_site()));
  tm::Stats::mine().record(tm::AbortCause::kRrRevocation);
  util::trace_event(util::Ev::kRrRevoke,
                    reinterpret_cast<std::uintptr_t>(ref));
}

/// Bug-injection mutant: when enabled, every Revoke implementation turns
/// into a no-op right after its telemetry fires. The schedule explorer
/// must then find an interleaving where a traverser's Get returns a
/// reference that is freed under it — validating that the exploration
/// actually exercises the reserve/revoke race.
inline bool mutation_drops_revoke() noexcept {
  return sched::mutate(sched::Mutation::kDropRevoke);
}

/// Trace-only markers (no counters): every Reserve/Get implementation
/// calls these so a trace shows the hand-over-hand choreography — which
/// references were parked, and which Gets came back nil (arg 0) because
/// a remover revoked or a collision evicted. Attempt-level, like the
/// revocation tally. Compiled out entirely in non-trace builds.
inline void note_reserve(Ref ref) noexcept {
  sched::point(sched::Op::kRrReserve, ref);
  tsan::release(ref);  // this thread's accesses to ref, up to the park
  util::trace_event(util::Ev::kRrReserve,
                    reinterpret_cast<std::uintptr_t>(ref));
}
inline void note_get(Ref ref) noexcept {
  sched::point(sched::Op::kRrGet, ref);
  util::trace_event(util::Ev::kRrGet, reinterpret_cast<std::uintptr_t>(ref));
}

/// Per-slot thread-generation tracking shared by all implementations.
///
/// The paper's Register() runs once per thread; in this library thread
/// slots are recycled, so "once per thread" becomes "whenever the slot's
/// recorded generation differs from the calling thread's". A reservation
/// object whose slot was inherited from a dead thread must scrub that
/// slot's state (a stale reservation would hand the new thread a dangling
/// reference). Writes go through the transaction so aborted registrations
/// unwind.
class SlotGenerations {
 public:
  template <class Tx>
  bool is_registered(Tx& tx) const {
    return tx.read(gen_[util::ThreadRegistry::slot()].value) ==
           util::ThreadRegistry::generation();
  }

  template <class Tx>
  void mark_registered(Tx& tx) {
    tx.write(gen_[util::ThreadRegistry::slot()].value,
             util::ThreadRegistry::generation());
  }

 private:
  util::CachePadded<std::uint64_t> gen_[util::kMaxThreads];
};

}  // namespace hohtm::rr
