#pragma once

#include <cstddef>
#include <vector>

#include "alloc/object.hpp"
#include "core/rr_common.hpp"
#include "reclaim/gauge.hpp"
#include "util/cacheline.hpp"

namespace hohtm::rr {

/// Shared machinery for the hash-bucketed strict reservation algorithms:
/// RR-DM (direct mapped, one bucket array) and RR-SA (set associative,
/// A bucket arrays with threads spread across them). See paper §3.1.
///
/// Each bucket is a circular doubly-linked list headed by a sentinel
/// (the paper adds sentinels "to reduce contention": reserving threads
/// splice right after the sentinel and never touch each other's nodes
/// unless the lists are long). A thread's node is linked into the bucket
/// its reserved reference hashes to, in the thread's assigned array.
///
/// Contention-avoiding optimization from the paper: Release only clears
/// the value and *delays* the unlink; the node is moved lazily by the next
/// Reserve that needs a different bucket.
template <class TM, std::size_t kArrays>
class RrBucketed {
  static_assert(kArrays >= 1);

 public:
  using Tx = typename TM::Tx;
  static constexpr bool kStrict = true;
  static constexpr bool kReal = true;

  /// `log2_buckets`: log2 of the bucket count per array.
  /// `delayed_unlink`: the paper's contention-avoiding optimization —
  /// Release leaves the node linked (moved lazily by a later Reserve);
  /// pass false for the eager variant ("should remove its node from the
  /// list"), which keeps buckets minimal at the cost of extra splicing
  /// traffic. The A7 ablation bench quantifies the trade.
  explicit RrBucketed(std::size_t log2_buckets = 6, bool delayed_unlink = true)
      : log2_buckets_(log2_buckets),
        delayed_unlink_(delayed_unlink),
        buckets_(kArrays << log2_buckets) {
    for (Sentinel& s : buckets_) {
      s.node.next = &s.node;
      s.node.prev = &s.node;
    }
  }

  RrBucketed(const RrBucketed&) = delete;
  RrBucketed& operator=(const RrBucketed&) = delete;

  ~RrBucketed() {
    for (auto& cell : mine_) {
      if (cell.value != nullptr) {
        alloc::destroy(cell.value);
        reclaim::Gauge::on_free();
      }
    }
  }

  void register_thread(Tx& tx) {
    if (generations_.is_registered(tx)) return;
    auto& mine = mine_[util::ThreadRegistry::slot()].value;
    ThreadNode* node = tx.read(mine);
    if (node == nullptr) {
      node = tx.template alloc<ThreadNode>();
      tx.write(node->value, static_cast<Ref>(nullptr));
      tx.write(node->bucket, kUnlinked);
      tx.write(node->next, static_cast<ThreadNode*>(nullptr));
      tx.write(node->prev, static_cast<ThreadNode*>(nullptr));
      tx.write(mine, node);
    } else {
      tx.write(node->value, static_cast<Ref>(nullptr));  // stale reservation
    }
    generations_.mark_registered(tx);
  }

  void reserve(Tx& tx, Ref ref) {
    note_reserve(ref);
    ThreadNode* node = mine(tx);
    const std::ptrdiff_t target = bucket_index(my_array(), ref);
    const std::ptrdiff_t current = tx.read(node->bucket);
    if (current != target) {
      if (current != kUnlinked) unlink(tx, node);
      link_after_sentinel(tx, node, target);
    }
    tx.write(node->value, ref);
  }

  void release(Tx& tx) {
    // Clearing the value suffices for correctness; in delayed mode the
    // node stays linked and is moved by a later Reserve if it needs a
    // different bucket.
    ThreadNode* node = mine(tx);
    tx.write(node->value, static_cast<Ref>(nullptr));
    if (!delayed_unlink_ && tx.read(node->bucket) != kUnlinked)
      unlink(tx, node);
  }

  Ref get(Tx& tx) {
    const Ref ref = tx.read(mine(tx)->value);
    note_get(ref);
    return ref;
  }

  /// Clear every reservation of `ref` in each array's matching bucket:
  /// O(A + occupants). Reserved-but-stale occupants of the bucket make
  /// the scan longer and widen the revoker's read set — the contention
  /// effect Figures 2 and 6 show for RR-DM/RR-SA.
  void revoke(Tx& tx, Ref ref) {
    note_revocation(ref);
    for (std::size_t array = 0; array < kArrays; ++array) {
      ThreadNode* sentinel = sentinel_of(bucket_index(array, ref));
      for (ThreadNode* n = tx.read(sentinel->next); n != sentinel;
           n = tx.read(n->next)) {
        if (tx.read(n->value) == ref)
          tx.write(n->value, static_cast<Ref>(nullptr));
      }
    }
  }

  /// Diagnostic: number of nodes currently linked in bucket `b` of the
  /// calling thread's array.
  std::size_t bucket_occupancy(Tx& tx, std::size_t b) {
    ThreadNode* sentinel =
        sentinel_of(static_cast<std::ptrdiff_t>((my_array() << log2_buckets_) + b));
    std::size_t count = 0;
    for (ThreadNode* n = tx.read(sentinel->next); n != sentinel;
         n = tx.read(n->next))
      ++count;
    return count;
  }

  std::size_t bucket_count() const noexcept {
    return std::size_t{1} << log2_buckets_;
  }

  /// Gauge-counted objects this algorithm currently owns (one node per
  /// slot that ever registered). Quiescent-only: callers must know no
  /// thread is mid-transaction, exactly as the destructor does.
  std::size_t gauge_owned() const noexcept {
    std::size_t count = 0;
    for (const auto& cell : mine_)
      if (cell.value != nullptr) ++count;
    return count;
  }

 private:
  static constexpr std::ptrdiff_t kUnlinked = -1;

  struct alignas(util::kCacheLineSize) ThreadNode {
    Ref value = nullptr;
    ThreadNode* next = nullptr;
    ThreadNode* prev = nullptr;
    std::ptrdiff_t bucket = kUnlinked;
  };

  struct Sentinel {
    ThreadNode node;
  };

  std::size_t my_array() const noexcept {
    if constexpr (kArrays == 1)
      return 0;
    else
      return util::ThreadRegistry::slot() % kArrays;
  }

  std::ptrdiff_t bucket_index(std::size_t array, Ref ref) const noexcept {
    return static_cast<std::ptrdiff_t>((array << log2_buckets_) +
                                       hash_ref(ref, log2_buckets_));
  }

  ThreadNode* sentinel_of(std::ptrdiff_t index) noexcept {
    return &buckets_[static_cast<std::size_t>(index)].node;
  }

  ThreadNode* mine(Tx& tx) {
    return tx.read(mine_[util::ThreadRegistry::slot()].value);
  }

  void link_after_sentinel(Tx& tx, ThreadNode* node, std::ptrdiff_t index) {
    ThreadNode* sentinel = sentinel_of(index);
    ThreadNode* successor = tx.read(sentinel->next);
    tx.write(node->next, successor);
    tx.write(node->prev, sentinel);
    tx.write(successor->prev, node);
    tx.write(sentinel->next, node);
    tx.write(node->bucket, index);
  }

  void unlink(Tx& tx, ThreadNode* node) {
    ThreadNode* predecessor = tx.read(node->prev);
    ThreadNode* successor = tx.read(node->next);
    tx.write(predecessor->next, successor);
    tx.write(successor->prev, predecessor);
    tx.write(node->bucket, kUnlinked);
  }

  std::size_t log2_buckets_;
  bool delayed_unlink_;
  std::vector<Sentinel> buckets_;
  util::CachePadded<ThreadNode*> mine_[util::kMaxThreads];
  SlotGenerations generations_;
};

/// RR-DM — direct-mapped reservations: one array of hash buckets.
/// Revoke scans only the bucket the reference hashes to (common case
/// far below O(T)), but Reserve/Release now splice a doubly-linked list,
/// so concurrent reservations in one bucket conflict (paper §3.1).
template <class TM>
class RrDm : public RrBucketed<TM, 1> {
 public:
  using RrBucketed<TM, 1>::RrBucketed;
  static constexpr const char* name() noexcept { return "RR-DM"; }
};

/// RR-SA — set-associative reservations: A bucket arrays with threads
/// spread across them, trading a longer Revoke (one bucket per array,
/// O(A + T) worst case) for fewer Reserve/Release collisions.
template <class TM, std::size_t kArrays = 8>
class RrSa : public RrBucketed<TM, kArrays> {
 public:
  using RrBucketed<TM, kArrays>::RrBucketed;
  static constexpr const char* name() noexcept { return "RR-SA"; }
};

}  // namespace hohtm::rr
