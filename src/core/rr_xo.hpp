#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/rr_common.hpp"
#include "util/cacheline.hpp"

namespace hohtm::rr {

/// RR-XO — exclusive-ownership reservations (paper Listing 3).
///
/// A hash-indexed array OWN maps references many-to-one onto thread-id
/// slots. Reserve stamps the caller's id into OWN[hash(ref)] and the
/// reference into a thread-private cell; Get succeeds only if the stamp
/// is still the caller's; Revoke overwrites the stamp with -1. Every
/// operation is O(1); Revoke is a single word write.
///
/// Relaxed: a Get may return nil spuriously — another thread reserving a
/// *different* reference that hashes to the same OWN slot evicts the
/// caller's stamp (and at most one thread can hold a reservation on any
/// given slot). Progress, not correctness, is what this costs (§3.2).
template <class TM>
class RrXo {
 public:
  using Tx = typename TM::Tx;
  static constexpr bool kStrict = false;
  static constexpr bool kReal = true;
  static constexpr const char* name() noexcept { return "RR-XO"; }

  explicit RrXo(std::size_t log2_slots = 12)
      : log2_slots_(log2_slots), own_(std::size_t{1} << log2_slots, kRevoked) {}

  RrXo(const RrXo&) = delete;
  RrXo& operator=(const RrXo&) = delete;

  /// The dense thread-registry slot doubles as the paper's unique id, so
  /// registration only needs to scrub a recycled slot's stale reference.
  void register_thread(Tx& tx) {
    if (generations_.is_registered(tx)) return;
    tx.write(my_ref(), static_cast<Ref>(nullptr));
    generations_.mark_registered(tx);
  }

  void reserve(Tx& tx, Ref ref) {
    note_reserve(ref);
    tx.write(own_[hash_ref(ref, log2_slots_)], my_id());
    tx.write(my_ref(), ref);
  }

  /// Thread-local only: never causes transaction conflicts.
  void release(Tx& tx) { tx.write(my_ref(), static_cast<Ref>(nullptr)); }

  Ref get(Tx& tx) {
    const Ref ref = tx.read(my_ref());
    if (ref == nullptr || tx.read(own_[hash_ref(ref, log2_slots_)]) != my_id()) {
      note_get(nullptr);
      return nullptr;
    }
    note_get(ref);
    return ref;
  }

  void revoke(Tx& tx, Ref ref) {
    note_revocation(ref);
    if (mutation_drops_revoke()) return;
    tx.write(own_[hash_ref(ref, log2_slots_)], kRevoked);
  }

 private:
  static constexpr std::int64_t kRevoked = -1;

  std::int64_t my_id() const noexcept {
    return static_cast<std::int64_t>(util::ThreadRegistry::slot());
  }

  Ref& my_ref() noexcept { return refs_[util::ThreadRegistry::slot()].value; }

  std::size_t log2_slots_;
  std::vector<std::int64_t> own_;
  util::CachePadded<Ref> refs_[util::kMaxThreads];
  SlotGenerations generations_;
};

}  // namespace hohtm::rr
