#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/rr_common.hpp"
#include "util/cacheline.hpp"

namespace hohtm::rr {

/// RR-SO — shared-ownership reservations (paper §3.2).
///
/// RR-XO with A ownership arrays: each thread stamps its id only into its
/// assigned array, so up to A threads can concurrently hold reservations
/// on references that share a hash slot, and same-slot Reserves from
/// different arrays no longer conflict. Revoke must clear the slot in all
/// A arrays — O(A), still constant.
template <class TM, std::size_t kArrays = 8>
class RrSo {
  static_assert(kArrays >= 1);

 public:
  using Tx = typename TM::Tx;
  static constexpr bool kStrict = false;
  static constexpr bool kReal = true;
  static constexpr const char* name() noexcept { return "RR-SO"; }

  explicit RrSo(std::size_t log2_slots = 12)
      : log2_slots_(log2_slots),
        own_(kArrays << log2_slots, kRevoked) {}

  RrSo(const RrSo&) = delete;
  RrSo& operator=(const RrSo&) = delete;

  void register_thread(Tx& tx) {
    if (generations_.is_registered(tx)) return;
    tx.write(my_ref(), static_cast<Ref>(nullptr));
    generations_.mark_registered(tx);
  }

  void reserve(Tx& tx, Ref ref) {
    note_reserve(ref);
    tx.write(own_[slot_index(my_array(), ref)], my_id());
    tx.write(my_ref(), ref);
  }

  void release(Tx& tx) { tx.write(my_ref(), static_cast<Ref>(nullptr)); }

  Ref get(Tx& tx) {
    const Ref ref = tx.read(my_ref());
    if (ref == nullptr ||
        tx.read(own_[slot_index(my_array(), ref)]) != my_id()) {
      note_get(nullptr);
      return nullptr;
    }
    note_get(ref);
    return ref;
  }

  void revoke(Tx& tx, Ref ref) {
    note_revocation(ref);
    if (mutation_drops_revoke()) return;
    for (std::size_t array = 0; array < kArrays; ++array)
      tx.write(own_[slot_index(array, ref)], kRevoked);
  }

 private:
  static constexpr std::int64_t kRevoked = -1;

  std::size_t my_array() const noexcept {
    return util::ThreadRegistry::slot() % kArrays;
  }

  std::size_t slot_index(std::size_t array, Ref ref) const noexcept {
    return (array << log2_slots_) + hash_ref(ref, log2_slots_);
  }

  std::int64_t my_id() const noexcept {
    return static_cast<std::int64_t>(util::ThreadRegistry::slot());
  }

  Ref& my_ref() noexcept { return refs_[util::ThreadRegistry::slot()].value; }

  std::size_t log2_slots_;
  std::vector<std::int64_t> own_;
  util::CachePadded<Ref> refs_[util::kMaxThreads];
  SlotGenerations generations_;
};

}  // namespace hohtm::rr
