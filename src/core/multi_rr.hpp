#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "alloc/object.hpp"
#include "core/rr_common.hpp"
#include "reclaim/gauge.hpp"
#include "util/cacheline.hpp"

namespace hohtm::rr {

/// Multi-reservation objects: per-thread *sets* of reserved references,
/// the extension the paper sketches in Section 3.1 ("To support multiple
/// reservations per thread, we would replace the value field with a
/// set"). Unlike the single-slot classes, these follow Listing 1's exact
/// signatures: Release and Get take the reference they operate on.
///
/// Capacity is a small compile-time constant: hand-over-hand algorithms
/// need a handful of simultaneous positions (traversal frontier, a pinned
/// victim, an insertion point), not an unbounded set, and a fixed array
/// keeps every operation allocation-free inside transactions.

/// Relaxed multi-reservation: versioned, like RR-V. Each held reference
/// stores the version counter observed at reserve time; Get re-checks it.
template <class TM, std::size_t kCapacity = 4>
class MultiRrV {
 public:
  using Tx = typename TM::Tx;
  static constexpr bool kStrict = false;
  static constexpr bool kReal = true;
  static constexpr std::size_t capacity() noexcept { return kCapacity; }
  static constexpr const char* name() noexcept { return "MultiRR-V"; }

  explicit MultiRrV(std::size_t log2_slots = 12)
      : log2_slots_(log2_slots), versions_(std::size_t{1} << log2_slots, 0) {}

  MultiRrV(const MultiRrV&) = delete;
  MultiRrV& operator=(const MultiRrV&) = delete;

  void register_thread(Tx& tx) {
    if (generations_.is_registered(tx)) return;
    for (auto& entry : mine().entries)
      tx.write(entry.ref, static_cast<Ref>(nullptr));
    generations_.mark_registered(tx);
  }

  /// Adds `ref` to the caller's set. Returns false (and does nothing) if
  /// the set is full — callers release before re-reserving, so a false
  /// here is a usage bug surfaced softly.
  bool reserve(Tx& tx, Ref ref) {
    Cell& cell = mine();
    for (auto& entry : cell.entries) {  // already held: refresh version
      if (tx.read(entry.ref) == ref) {
        tx.write(entry.version, tx.read(versions_[slot_of(ref)]));
        return true;
      }
    }
    for (auto& entry : cell.entries) {
      if (tx.read(entry.ref) == nullptr) {
        tx.write(entry.version, tx.read(versions_[slot_of(ref)]));
        tx.write(entry.ref, ref);
        return true;
      }
    }
    return false;
  }

  /// Removes `ref` from the caller's set (no-op if absent).
  void release(Tx& tx, Ref ref) {
    for (auto& entry : mine().entries) {
      if (tx.read(entry.ref) == ref)
        tx.write(entry.ref, static_cast<Ref>(nullptr));
    }
  }

  void release_all(Tx& tx) {
    for (auto& entry : mine().entries)
      tx.write(entry.ref, static_cast<Ref>(nullptr));
  }

  /// Listing 1 semantics: `ref` if it is in the caller's set (and its
  /// slot has not been revoked since), nil otherwise.
  Ref get(Tx& tx, Ref ref) {
    for (auto& entry : mine().entries) {
      if (tx.read(entry.ref) == ref) {
        if (tx.read(versions_[slot_of(ref)]) != tx.read(entry.version))
          return nullptr;  // revoked (or hash-collided revoke: relaxed)
        return ref;
      }
    }
    return nullptr;
  }

  void revoke(Tx& tx, Ref ref) {
    note_revocation(ref);
    auto& counter = versions_[slot_of(ref)];
    tx.write(counter, tx.read(counter) + 1);
  }

  /// Number of live reservations held by the caller (diagnostics).
  std::size_t held(Tx& tx) {
    std::size_t count = 0;
    for (auto& entry : mine().entries)
      if (tx.read(entry.ref) != nullptr) ++count;
    return count;
  }

 private:
  struct Entry {
    Ref ref = nullptr;
    std::uint64_t version = 0;
  };
  struct Cell {
    Entry entries[kCapacity];
  };

  std::size_t slot_of(Ref ref) const noexcept {
    return hash_ref(ref, log2_slots_);
  }
  Cell& mine() noexcept { return cells_[util::ThreadRegistry::slot()].value; }

  std::size_t log2_slots_;
  std::vector<std::uint64_t> versions_;
  util::CachePadded<Cell> cells_[util::kMaxThreads];
  SlotGenerations generations_;
};

/// Strict multi-reservation: fully associative, like RR-FA. Each thread
/// owns a padded node holding a small array of references; Revoke scans
/// every thread's array — O(T * kCapacity).
template <class TM, std::size_t kCapacity = 4>
class MultiRrFa {
 public:
  using Tx = typename TM::Tx;
  static constexpr bool kStrict = true;
  static constexpr bool kReal = true;
  static constexpr std::size_t capacity() noexcept { return kCapacity; }
  static constexpr const char* name() noexcept { return "MultiRR-FA"; }

  MultiRrFa() = default;
  MultiRrFa(const MultiRrFa&) = delete;
  MultiRrFa& operator=(const MultiRrFa&) = delete;

  ~MultiRrFa() {
    ThreadNode* n = head_;
    while (n != nullptr) {
      ThreadNode* next = n->next;
      alloc::destroy(n);
      reclaim::Gauge::on_free();
      n = next;
    }
  }

  void register_thread(Tx& tx) {
    if (generations_.is_registered(tx)) return;
    auto& mine = mine_[util::ThreadRegistry::slot()].value;
    ThreadNode* node = tx.read(mine);
    if (node == nullptr) {
      node = tx.template alloc<ThreadNode>();
      for (auto& ref : node->refs) tx.write(ref, static_cast<Ref>(nullptr));
      tx.write(node->next, tx.read(head_));
      tx.write(head_, node);
      tx.write(mine, node);
    } else {
      for (auto& ref : node->refs) tx.write(ref, static_cast<Ref>(nullptr));
    }
    generations_.mark_registered(tx);
  }

  bool reserve(Tx& tx, Ref ref) {
    ThreadNode* node = mine(tx);
    for (auto& slot : node->refs)
      if (tx.read(slot) == ref) return true;
    for (auto& slot : node->refs) {
      if (tx.read(slot) == nullptr) {
        tx.write(slot, ref);
        return true;
      }
    }
    return false;
  }

  void release(Tx& tx, Ref ref) {
    ThreadNode* node = mine(tx);
    for (auto& slot : node->refs)
      if (tx.read(slot) == ref) tx.write(slot, static_cast<Ref>(nullptr));
  }

  void release_all(Tx& tx) {
    ThreadNode* node = mine(tx);
    for (auto& slot : node->refs) tx.write(slot, static_cast<Ref>(nullptr));
  }

  Ref get(Tx& tx, Ref ref) {
    ThreadNode* node = mine(tx);
    for (auto& slot : node->refs)
      if (tx.read(slot) == ref) return ref;
    return nullptr;
  }

  void revoke(Tx& tx, Ref ref) {
    note_revocation(ref);
    for (ThreadNode* n = tx.read(head_); n != nullptr; n = tx.read(n->next)) {
      for (auto& slot : n->refs)
        if (tx.read(slot) == ref) tx.write(slot, static_cast<Ref>(nullptr));
    }
  }

  std::size_t held(Tx& tx) {
    std::size_t count = 0;
    ThreadNode* node = mine(tx);
    for (auto& slot : node->refs)
      if (tx.read(slot) != nullptr) ++count;
    return count;
  }

 private:
  struct alignas(util::kCacheLineSize) ThreadNode {
    Ref refs[kCapacity] = {};
    ThreadNode* next = nullptr;
  };

  ThreadNode* mine(Tx& tx) {
    return tx.read(mine_[util::ThreadRegistry::slot()].value);
  }

  ThreadNode* head_ = nullptr;
  util::CachePadded<ThreadNode*> mine_[util::kMaxThreads];
  SlotGenerations generations_;
};

}  // namespace hohtm::rr
