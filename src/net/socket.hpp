#pragma once

#include <cstddef>
#include <cstdint>

namespace hohtm::net {

/// Thin POSIX socket helpers for the serving tier; loopback-only by
/// design (the bench and tests drive real TCP through 127.0.0.1). All
/// functions return -1 on failure and never throw.

/// Nonblocking listener bound to 127.0.0.1:`port` (0 = ephemeral); the
/// actually-bound port lands in `*bound_port`.
int listen_tcp(std::uint16_t port, std::uint16_t* bound_port);

/// Blocking client connection to 127.0.0.1:`port`.
int connect_tcp(std::uint16_t port);

int set_nonblocking(int fd);

/// eventfd for cross-thread event-loop wakeups (the Completion
/// on_signal hook writes here; the epoll loop drains it).
int make_eventfd();

/// Write all `n` bytes to a blocking fd, retrying on EINTR/short writes.
bool write_all(int fd, const char* data, std::size_t n);

/// CLOCK_MONOTONIC in nanoseconds (idle-timeout bookkeeping).
std::uint64_t monotonic_ns();

}  // namespace hohtm::net
