#pragma once

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kv/service.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "util/metrics.hpp"

namespace hohtm::net {

/// TCP front door over kv::Service (docs/SERVING.md): one event-loop
/// thread runs a level-triggered epoll over the listener, an eventfd,
/// and every connection. Reads decode incrementally (torn frames and
/// coalesced reads are the normal case), decoded ops from one pipeline
/// read are bridged into the ring as a single kv::OpCode::kBatch request
/// — the batch boundary the store fuses into one window transaction per
/// same-shard run — with at most one batch in flight per connection, so
/// a pipeline executes in program order and responses are written back
/// strictly in submission order. Backpressure is a bounded
/// in-flight-op window per connection: when it fills, the connection's
/// EPOLLIN is dropped until completions drain, so a client that outruns
/// the store parks in its socket buffer instead of ballooning server
/// memory. Workers never see a socket and the loop thread never joins a
/// transaction mid-op, so a stalled client cannot hold a reservation or
/// a quiescence fence — the precise-reclamation robustness argument the
/// stalled-client test pins down.
template <class TM, class RR>
class Server {
 public:
  struct Options {
    std::uint16_t port = 0;               // 0 = ephemeral loopback port
    std::size_t max_inflight_ops = 64;    // per-connection backpressure window
    std::uint32_t max_frame_bytes = kMaxFrameBytes;
    std::uint64_t idle_timeout_ms = 0;    // 0 = never time out
  };

  /// Monotonic counters, written by the loop thread, readable any time.
  struct Counters {
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t batches = 0;     // kBatch requests submitted to the ring
    std::uint64_t fused_ops = 0;   // ops committed inside fused groups
    std::uint64_t batch_txs = 0;   // fused group transactions
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t rejected_frames = 0;  // oversized / malformed
    std::uint64_t timeouts = 0;         // idle connections reaped
    std::uint64_t max_inflight = 0;     // high-water in-flight ops, any conn
  };

  Server(kv::Service<TM, RR>& service, Options opt)
      : service_(service), opt_(opt) {
    listen_fd_ = listen_tcp(opt_.port, &port_);
    wake_fd_ = make_eventfd();
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    ok_ = listen_fd_ >= 0 && wake_fd_ >= 0 && epoll_fd_ >= 0;
    if (ok_) {
      arm(listen_fd_, EPOLLIN);
      arm(wake_fd_, EPOLLIN);
      loop_ = std::thread([this] { run(); });
    }
  }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  ~Server() { stop(); }

  bool ok() const noexcept { return ok_; }
  std::uint16_t port() const noexcept { return port_; }

  /// Stop accepting, drain every connection's in-flight batches, close
  /// all sockets, and join the loop thread. Call before Service::stop()
  /// in an orderly shutdown; the reverse order is also safe (submitted
  /// batches answer kStopped, later ones are rejected kShutdown — both
  /// signal, so the drain never hangs).
  void stop() {
    if (!ok_ || stop_.exchange(true, std::memory_order_acq_rel)) return;
    kick();
    loop_.join();
    for (auto& [fd, conn] : conns_) teardown(*conn);
    conns_.clear();
    ::close(listen_fd_);
    ::close(wake_fd_);
    ::close(epoll_fd_);
  }

  Counters counters() const noexcept {
    Counters out;
    out.accepted = c_accepted_.load(std::memory_order_relaxed);
    out.closed = c_closed_.load(std::memory_order_relaxed);
    out.batches = c_batches_.load(std::memory_order_relaxed);
    out.fused_ops = c_fused_ops_.load(std::memory_order_relaxed);
    out.batch_txs = c_batch_txs_.load(std::memory_order_relaxed);
    out.bytes_in = c_bytes_in_.load(std::memory_order_relaxed);
    out.bytes_out = c_bytes_out_.load(std::memory_order_relaxed);
    out.rejected_frames = c_rejected_.load(std::memory_order_relaxed);
    out.timeouts = c_timeouts_.load(std::memory_order_relaxed);
    out.max_inflight = c_max_inflight_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  /// One submitted pipeline batch: the kv ops (results written in place
  /// by the worker), the wire identity of each op for the response
  /// encoder, and the Completion the worker signals. Owned by the
  /// connection's pending queue; freed only after the signal.
  struct NetBatch {
    std::vector<kv::BatchOp> ops;
    std::vector<std::uint32_t> seqs;
    std::vector<WireOp> wire_ops;
    kv::Completion done;
  };

  struct Conn {
    int fd = -1;
    FrameDecoder dec;
    std::deque<NetOp> staged;  // decoded, not yet submitted
    std::deque<std::unique_ptr<NetBatch>> pending;  // submission order
    std::string outbuf;
    std::size_t outoff = 0;
    std::size_t inflight = 0;  // ops submitted, completion not harvested
    std::uint64_t last_in_ns = 0;
    bool reading = true;   // EPOLLIN armed
    bool want_out = false; // EPOLLOUT armed
    bool closing = false;  // serve what's queued, then close
    bool reject = false;   // owe a bad_frame response, in order, then close

    explicit Conn(int f, std::uint32_t max_frame, std::uint64_t now)
        : fd(f), dec(max_frame), last_in_ns(now) {}
  };

  /// Completion::on_signal hook: one eventfd write. Touches only the
  /// argument (the Completion may be concurrently harvested and freed).
  static void wake_hook(void* arg) {
    const int fd = static_cast<int>(reinterpret_cast<std::intptr_t>(arg));
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t r = ::write(fd, &one, sizeof(one));
  }

  void kick() { wake_hook(reinterpret_cast<void*>(
      static_cast<std::intptr_t>(wake_fd_))); }

  void arm(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }

  void rearm(Conn& c) {
    epoll_event ev{};
    ev.events = (c.reading ? EPOLLIN : 0u) | (c.want_out ? EPOLLOUT : 0u);
    ev.data.fd = c.fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
  }

  void run() {
    const int kMetricBytesIn = util::MetricsRegistry::counter("net.bytes_in");
    const int kMetricBytesOut =
        util::MetricsRegistry::counter("net.bytes_out");
    const int kMetricBatches = util::MetricsRegistry::counter("net.batches");
    const int kMetricFused = util::MetricsRegistry::counter("net.fused_ops");
    metric_bytes_in_ = kMetricBytesIn;
    metric_bytes_out_ = kMetricBytesOut;
    metric_batches_ = kMetricBatches;
    metric_fused_ = kMetricFused;
    std::vector<epoll_event> events(64);
    while (!stop_.load(std::memory_order_acquire)) {
      const int timeout_ms = next_timeout_ms();
      const int n =
          epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
      if (n < 0 && errno != EINTR) break;
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == listen_fd_) {
          accept_ready();
        } else if (fd == wake_fd_) {
          drain_wake();
          harvest_all();
        } else {
          auto it = conns_.find(fd);
          if (it == conns_.end()) continue;
          Conn& c = *it->second;
          if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
            close_conn(c);
            continue;
          }
          if ((events[i].events & EPOLLIN) != 0) read_ready(c);
          if (conns_.count(fd) == 0) continue;  // read path closed it
          if ((events[i].events & EPOLLOUT) != 0) flush(c);
          if (done_closing(c)) close_conn(c);
        }
      }
      // Completions may have signalled while we were handling sockets.
      harvest_all();
      reap_idle();
    }
  }

  int next_timeout_ms() const {
    if (opt_.idle_timeout_ms == 0 || conns_.empty()) return 100;
    const std::uint64_t now = monotonic_ns();
    const std::uint64_t budget_ns = opt_.idle_timeout_ms * 1000000ULL;
    std::uint64_t min_left = budget_ns;
    for (const auto& [fd, conn] : conns_) {
      const std::uint64_t idle = now - conn->last_in_ns;
      const std::uint64_t left = idle >= budget_ns ? 0 : budget_ns - idle;
      if (left < min_left) min_left = left;
    }
    return static_cast<int>(min_left / 1000000ULL) + 1;
  }

  void accept_ready() {
    for (;;) {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN (or transient error): done for now
      set_nonblocking(fd);
      c_accepted_.fetch_add(1, std::memory_order_relaxed);
      conns_.emplace(fd, std::make_unique<Conn>(fd, opt_.max_frame_bytes,
                                                monotonic_ns()));
      arm(fd, EPOLLIN);
    }
  }

  void drain_wake() {
    std::uint64_t buf = 0;
    while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
    }
  }

  void read_ready(Conn& c) {
    char buf[65536];
    bool saw_eof = false;
    for (;;) {
      const ssize_t r = ::read(c.fd, buf, sizeof(buf));
      if (r > 0) {
        c_bytes_in_.fetch_add(static_cast<std::uint64_t>(r),
                              std::memory_order_relaxed);
        util::MetricsRegistry::add(metric_bytes_in_,
                                   static_cast<std::uint64_t>(r));
        c.dec.feed(buf, static_cast<std::size_t>(r));
        c.last_in_ns = monotonic_ns();
        continue;
      }
      if (r == 0) {
        saw_eof = true;
        break;
      }
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained
    }
    // Decode every complete frame the read produced.
    for (;;) {
      NetOp op;
      const DecodeResult d = c.dec.next(op);
      if (d == DecodeResult::kFrame) {
        c.staged.push_back(std::move(op));
        continue;
      }
      if (d == DecodeResult::kNeedMore) break;
      // Oversized or malformed: owe the client one bad_frame response —
      // emitted only after every previously accepted op has answered, so
      // responses never jump the submission order — then close.
      c_rejected_.fetch_add(1, std::memory_order_relaxed);
      c.reject = true;
      c.closing = true;
      c.reading = false;
      break;
    }
    if (saw_eof) {
      c.closing = true;
      c.reading = false;
    }
    pump(c);
    finish_reject(c);
    rearm(c);
    flush(c);
    if (done_closing(c)) close_conn(c);
  }

  /// Emit the owed bad_frame rejection once everything accepted before
  /// the bad bytes has been served: it is the connection's last response.
  void finish_reject(Conn& c) {
    if (!c.reject || !c.pending.empty() || !c.staged.empty()) return;
    NetResponse bad;
    bad.op = WireOp::kGet;
    bad.status = WireStatus::kBadFrame;
    bad.seq = 0;
    encode_response(c.outbuf, bad);
    c.reject = false;
  }

  /// True once a closing connection has nothing left to serve or flush.
  bool done_closing(const Conn& c) const {
    return c.closing && !c.reject && c.pending.empty() && c.staged.empty() &&
           c.outoff == c.outbuf.size();
  }

  /// Submit staged ops as ONE kBatch request of up to the window's worth
  /// of ops — the batch boundary Store::run_batch fuses per same-shard
  /// run. At most one batch is in flight per connection: the ring may
  /// serve different connections' batches on different workers, but a
  /// single connection's pipeline must execute in program order (a PUT
  /// followed by a DEL of the same key has exactly one right answer), and
  /// ordering inside a batch plus one-batch-at-a-time gives exactly that.
  void pump(Conn& c) {
    if (!c.staged.empty() && c.pending.empty()) {
      const std::size_t take = c.staged.size() < opt_.max_inflight_ops
                                   ? c.staged.size()
                                   : opt_.max_inflight_ops;
      auto batch = std::make_unique<NetBatch>();
      batch->ops.reserve(take);
      batch->seqs.reserve(take);
      batch->wire_ops.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        NetOp& in = c.staged.front();
        kv::BatchOp op;
        switch (in.op) {
          case WireOp::kGet:
            op.op = kv::OpCode::kGet;
            break;
          case WireOp::kPut:
            op.op = kv::OpCode::kPut;
            break;
          case WireOp::kDel:
            op.op = kv::OpCode::kDel;
            break;
          case WireOp::kScan:
            op.op = kv::OpCode::kScan;
            break;
          case WireOp::kStats:
            op.op = kv::OpCode::kStats;
            break;
        }
        op.key = std::move(in.key);
        op.value = std::move(in.value);
        op.scan_limit = in.scan_limit;
        batch->seqs.push_back(in.seq);
        batch->wire_ops.push_back(in.op);
        batch->ops.push_back(std::move(op));
        c.staged.pop_front();
      }
      batch->done.on_signal = &Server::wake_hook;
      batch->done.on_signal_arg =
          reinterpret_cast<void*>(static_cast<std::intptr_t>(wake_fd_));
      kv::Request req;
      req.op = kv::OpCode::kBatch;
      req.done = &batch->done;
      req.batch = batch->ops.data();
      req.batch_len = static_cast<std::uint32_t>(batch->ops.size());
      c.inflight += batch->ops.size();
      if (c.inflight > c_max_inflight_.load(std::memory_order_relaxed))
        c_max_inflight_.store(c.inflight, std::memory_order_relaxed);
      c_batches_.fetch_add(1, std::memory_order_relaxed);
      util::MetricsRegistry::add(metric_batches_);
      c.pending.push_back(std::move(batch));
      // A rejected submit (service stopping) still signals kShutdown on
      // the Completion, so the harvest path answers it uniformly.
      service_.submit(std::move(req));
    }
    // Backpressure: a full in-flight window, or a staged backlog already
    // deep enough to refill it, stops reads until completions drain — the
    // client parks in its socket buffer instead of ballooning the server.
    const bool throttled = c.inflight >= opt_.max_inflight_ops ||
                           c.staged.size() >= opt_.max_inflight_ops;
    if (throttled && c.reading) {
      c.reading = false;
      rearm(c);
    }
  }

  void harvest_all() {
    std::vector<int> done_fds;
    for (auto& [fd, conn] : conns_) {
      harvest(*conn);
      if (done_closing(*conn)) done_fds.push_back(fd);
    }
    for (const int fd : done_fds) {
      auto it = conns_.find(fd);
      if (it != conns_.end()) close_conn(*it->second);
    }
  }

  /// Encode every signalled batch at the head of the pending queue — the
  /// queue is submission order, so responses leave strictly in request
  /// order even when the ring serves batches on different workers.
  /// Never closes the connection (callers check done_closing afterward,
  /// outside any iteration over the connection map).
  void harvest(Conn& c) {
    bool progressed = false;
    while (!c.pending.empty() &&
           c.pending.front()->done.state.load(std::memory_order_acquire) ==
               1) {
      NetBatch& b = *c.pending.front();
      const kv::ResultCode rc = b.done.rc;
      for (std::size_t i = 0; i < b.ops.size(); ++i) {
        NetResponse r;
        r.op = b.wire_ops[i];
        r.seq = b.seqs[i];
        if (rc == kv::ResultCode::kStopped) {
          r.status = WireStatus::kStopped;
        } else if (rc == kv::ResultCode::kShutdown) {
          r.status = WireStatus::kShutdown;
        } else {
          kv::BatchOp& op = b.ops[i];
          switch (r.op) {
            case WireOp::kGet:
              r.status =
                  op.hit ? WireStatus::kOk : WireStatus::kNotFound;
              if (op.hit) r.value = std::move(op.out);
              break;
            case WireOp::kPut:
              r.status = WireStatus::kOk;
              r.created = op.hit;
              break;
            case WireOp::kDel:
              r.status =
                  op.hit ? WireStatus::kOk : WireStatus::kNotFound;
              break;
            case WireOp::kScan:
              r.status = WireStatus::kOk;
              r.scan_count = op.scan_count;
              break;
            case WireOp::kStats:
              r.status = WireStatus::kOk;
              r.value = std::move(op.out);
              break;
          }
        }
        encode_response(c.outbuf, r);
      }
      c.inflight -= b.ops.size();
      c_fused_ops_.fetch_add(b.done.fused_ops, std::memory_order_relaxed);
      c_batch_txs_.fetch_add(b.done.batch_txs, std::memory_order_relaxed);
      util::MetricsRegistry::add(metric_fused_, b.done.fused_ops);
      c.pending.pop_front();
      progressed = true;
    }
    if (progressed) {
      pump(c);
      finish_reject(c);
      // Window drained below the cap and the backlog refilled: resume
      // reading once both are back under the throttle thresholds.
      if (!c.closing && !c.reading &&
          c.inflight < opt_.max_inflight_ops &&
          c.staged.size() < opt_.max_inflight_ops) {
        c.reading = true;
        rearm(c);
      }
      flush(c);
    }
  }

  void flush(Conn& c) {
    while (c.outoff < c.outbuf.size()) {
      const ssize_t w =
          ::write(c.fd, c.outbuf.data() + c.outoff, c.outbuf.size() - c.outoff);
      if (w > 0) {
        c.outoff += static_cast<std::size_t>(w);
        c_bytes_out_.fetch_add(static_cast<std::uint64_t>(w),
                               std::memory_order_relaxed);
        util::MetricsRegistry::add(metric_bytes_out_,
                                   static_cast<std::uint64_t>(w));
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      break;  // EAGAIN (or a dead peer): EPOLLOUT will retry
    }
    if (c.outoff == c.outbuf.size()) {
      c.outbuf.clear();
      c.outoff = 0;
      if (c.want_out) {
        c.want_out = false;
        rearm(c);
      }
    } else if (!c.want_out) {
      c.want_out = true;
      rearm(c);
    }
  }

  void reap_idle() {
    if (opt_.idle_timeout_ms == 0) return;
    const std::uint64_t now = monotonic_ns();
    const std::uint64_t budget_ns = opt_.idle_timeout_ms * 1000000ULL;
    std::vector<int> idle;
    for (const auto& [fd, conn] : conns_)
      if (now - conn->last_in_ns >= budget_ns) idle.push_back(fd);
    for (const int fd : idle) {
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      c_timeouts_.fetch_add(1, std::memory_order_relaxed);
      close_conn(*it->second);
    }
  }

  void close_conn(Conn& c) {
    const int fd = c.fd;
    teardown(c);
    conns_.erase(fd);
    c_closed_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Wait out in-flight batches (workers are live, so each wait is one
  /// op-service long), then close the socket. The wait is what makes
  /// freeing the NetBatch — which the worker writes into — safe.
  void teardown(Conn& c) {
    for (auto& batch : c.pending) batch->done.wait();
    c.pending.clear();
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
    ::close(c.fd);
  }

  kv::Service<TM, RR>& service_;
  Options opt_;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  int epoll_fd_ = -1;
  std::uint16_t port_ = 0;
  bool ok_ = false;
  std::thread loop_;
  std::atomic<bool> stop_{false};
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;  // loop thread only
  int metric_bytes_in_ = -1;
  int metric_bytes_out_ = -1;
  int metric_batches_ = -1;
  int metric_fused_ = -1;
  std::atomic<std::uint64_t> c_accepted_{0};
  std::atomic<std::uint64_t> c_closed_{0};
  std::atomic<std::uint64_t> c_batches_{0};
  std::atomic<std::uint64_t> c_fused_ops_{0};
  std::atomic<std::uint64_t> c_batch_txs_{0};
  std::atomic<std::uint64_t> c_bytes_in_{0};
  std::atomic<std::uint64_t> c_bytes_out_{0};
  std::atomic<std::uint64_t> c_rejected_{0};
  std::atomic<std::uint64_t> c_timeouts_{0};
  std::atomic<std::uint64_t> c_max_inflight_{0};
};

}  // namespace hohtm::net
