#pragma once

#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <string>
#include <string_view>

#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace hohtm::net {

/// Blocking pipelined client for tests and the loopback bench: queue any
/// number of requests, flush() them in one write, then recv() responses
/// in order. Sequence numbers are assigned automatically and returned so
/// callers can assert per-connection in-order completion.
class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connect(std::uint16_t port) {
    fd_ = connect_tcp(port);
    return fd_ >= 0;
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  int fd() const noexcept { return fd_; }

  std::uint32_t queue_get(std::string_view key) {
    encode_get(outbuf_, next_seq_, key);
    return next_seq_++;
  }
  std::uint32_t queue_put(std::string_view key, std::string_view value) {
    encode_put(outbuf_, next_seq_, key, value);
    return next_seq_++;
  }
  std::uint32_t queue_del(std::string_view key) {
    encode_del(outbuf_, next_seq_, key);
    return next_seq_++;
  }
  std::uint32_t queue_scan(std::string_view key, std::uint32_t limit) {
    encode_scan(outbuf_, next_seq_, key, limit);
    return next_seq_++;
  }
  std::uint32_t queue_stats() {
    encode_stats(outbuf_, next_seq_);
    return next_seq_++;
  }

  /// Write every queued frame in one burst (the pipelining that makes
  /// the server's batch boundary). Returns bytes written, 0 on failure.
  std::size_t flush() {
    if (outbuf_.empty()) return 0;
    const std::size_t n = outbuf_.size();
    const bool ok = write_all(fd_, outbuf_.data(), n);
    outbuf_.clear();
    return ok ? n : 0;
  }

  /// Raw bytes straight to the socket — the torn-frame tests drip-feed
  /// partial frames through this.
  bool send_raw(std::string_view bytes) {
    return write_all(fd_, bytes.data(), bytes.size());
  }

  /// Blocking read of the next response frame; false on EOF/error.
  bool recv(NetResponse& out) {
    for (;;) {
      const DecodeResult d = dec_.next(out);
      if (d == DecodeResult::kFrame) return true;
      if (d != DecodeResult::kNeedMore) return false;
      char buf[65536];
      const ssize_t r = ::read(fd_, buf, sizeof(buf));
      if (r > 0) {
        dec_.feed(buf, static_cast<std::size_t>(r));
        continue;
      }
      if (r < 0 && errno == EINTR) continue;
      return false;  // EOF or hard error
    }
  }

 private:
  int fd_ = -1;
  std::uint32_t next_seq_ = 1;
  std::string outbuf_;
  ResponseDecoder dec_;
};

}  // namespace hohtm::net
