#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace hohtm::net {

/// Wire protocol for the serving tier (docs/SERVING.md). Length-prefixed
/// little-endian frames, designed for pipelining: a client may write any
/// number of request frames back to back; the server answers with one
/// response frame per request, in submission order per connection.
///
/// Request frame:
///   u32 len      bytes after this field
///   u8  op       1=GET 2=PUT 3=DEL 4=SCAN 5=STATS
///   u32 seq      client-chosen id, echoed verbatim in the response
///   payload      GET/DEL: u32 klen, key bytes
///                PUT:     u32 klen, u32 vlen, key bytes, value bytes
///                SCAN:    u32 klen, u32 limit, key bytes
///                STATS:   empty
///
/// Response frame:
///   u32 len      bytes after this field
///   u8  op       echoed request opcode
///   u8  status   0=ok 1=not_found 2=stopped 3=shutdown 4=bad_frame
///   u32 seq      echoed request seq
///   payload      GET ok:  u32 vlen, value bytes
///                PUT:     u8 created
///                DEL:     empty
///                SCAN:    u32 count (count-only keeps frames bounded)
///                STATS:   u32 vlen, JSON snapshot bytes
///
/// The decoder is incremental: feed() accepts arbitrary byte slices
/// (torn frames, coalesced reads) and next() yields complete frames —
/// the splitter fuzz test proves every partition of a stream decodes to
/// byte-identical results.

enum class WireOp : std::uint8_t {
  kGet = 1,
  kPut = 2,
  kDel = 3,
  kScan = 4,
  kStats = 5,
};

enum class WireStatus : std::uint8_t {
  kOk = 0,
  kNotFound = 1,
  kStopped = 2,
  kShutdown = 3,
  kBadFrame = 4,
};

/// Frames larger than this are protocol violations: the decoder reports
/// kTooBig without buffering them, and the server answers bad_frame and
/// closes (docs/SERVING.md, "Framing rules").
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// A decoded request frame.
struct NetOp {
  WireOp op = WireOp::kGet;
  std::uint32_t seq = 0;
  std::string key;
  std::string value;
  std::uint32_t scan_limit = 0;
};

/// A decoded response frame.
struct NetResponse {
  WireOp op = WireOp::kGet;
  WireStatus status = WireStatus::kOk;
  std::uint32_t seq = 0;
  std::string value;   // get value / stats JSON
  bool created = false;
  std::uint32_t scan_count = 0;
};

enum class DecodeResult : std::uint8_t {
  kFrame,     // one complete frame decoded into `out`
  kNeedMore,  // the buffered bytes end mid-frame
  kTooBig,    // declared length exceeds the frame cap
  kMalformed, // bad opcode / payload inconsistent with the length
};

namespace detail {

inline void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out.append(b, 4);
}

inline std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

/// Incremental frame buffer shared by the request and response decoders:
/// feed() appends, frame() peeks one complete length-prefixed body.
class FrameBuffer {
 public:
  explicit FrameBuffer(std::uint32_t max_frame) : max_frame_(max_frame) {}

  void feed(const char* data, std::size_t n) { buf_.append(data, n); }

  /// kFrame: `*body`/`*body_len` point at the complete frame body (valid
  /// until the next feed/consume); caller must consume() after decoding.
  DecodeResult frame(const char** body, std::size_t* body_len) {
    compact();
    const std::size_t avail = buf_.size() - off_;
    if (avail < 4) return DecodeResult::kNeedMore;
    const std::uint32_t len = get_u32(buf_.data() + off_);
    if (len > max_frame_) return DecodeResult::kTooBig;
    if (avail < 4 + static_cast<std::size_t>(len))
      return DecodeResult::kNeedMore;
    *body = buf_.data() + off_ + 4;
    *body_len = len;
    return DecodeResult::kFrame;
  }

  void consume(std::size_t body_len) { off_ += 4 + body_len; }

  bool empty() const { return off_ == buf_.size(); }

 private:
  void compact() {
    // Reclaim consumed prefix bytes once they dominate the buffer, so a
    // long-lived pipelined connection doesn't grow its buffer forever.
    if (off_ > 4096 && off_ * 2 > buf_.size()) {
      buf_.erase(0, off_);
      off_ = 0;
    }
  }

  std::uint32_t max_frame_;
  std::string buf_;
  std::size_t off_ = 0;
};

}  // namespace detail

// ---- Request encoding (client side) ----

inline void encode_get(std::string& out, std::uint32_t seq,
                       std::string_view key) {
  detail::put_u32(out, static_cast<std::uint32_t>(1 + 4 + 4 + key.size()));
  out.push_back(static_cast<char>(WireOp::kGet));
  detail::put_u32(out, seq);
  detail::put_u32(out, static_cast<std::uint32_t>(key.size()));
  out.append(key.data(), key.size());
}

inline void encode_del(std::string& out, std::uint32_t seq,
                       std::string_view key) {
  detail::put_u32(out, static_cast<std::uint32_t>(1 + 4 + 4 + key.size()));
  out.push_back(static_cast<char>(WireOp::kDel));
  detail::put_u32(out, seq);
  detail::put_u32(out, static_cast<std::uint32_t>(key.size()));
  out.append(key.data(), key.size());
}

inline void encode_put(std::string& out, std::uint32_t seq,
                       std::string_view key, std::string_view value) {
  detail::put_u32(out, static_cast<std::uint32_t>(1 + 4 + 4 + 4 + key.size() +
                                                  value.size()));
  out.push_back(static_cast<char>(WireOp::kPut));
  detail::put_u32(out, seq);
  detail::put_u32(out, static_cast<std::uint32_t>(key.size()));
  detail::put_u32(out, static_cast<std::uint32_t>(value.size()));
  out.append(key.data(), key.size());
  out.append(value.data(), value.size());
}

inline void encode_scan(std::string& out, std::uint32_t seq,
                        std::string_view key, std::uint32_t limit) {
  detail::put_u32(out, static_cast<std::uint32_t>(1 + 4 + 4 + 4 + key.size()));
  out.push_back(static_cast<char>(WireOp::kScan));
  detail::put_u32(out, seq);
  detail::put_u32(out, static_cast<std::uint32_t>(key.size()));
  detail::put_u32(out, limit);
  out.append(key.data(), key.size());
}

inline void encode_stats(std::string& out, std::uint32_t seq) {
  detail::put_u32(out, 1 + 4);
  out.push_back(static_cast<char>(WireOp::kStats));
  detail::put_u32(out, seq);
}

// ---- Response encoding (server side) ----

inline void encode_response(std::string& out, const NetResponse& r) {
  std::uint32_t payload = 0;
  const bool get_ok =
      r.op == WireOp::kGet && r.status == WireStatus::kOk;
  const bool stats_ok =
      r.op == WireOp::kStats && r.status == WireStatus::kOk;
  if (get_ok || stats_ok)
    payload = static_cast<std::uint32_t>(4 + r.value.size());
  else if (r.op == WireOp::kPut)
    payload = 1;
  else if (r.op == WireOp::kScan)
    payload = 4;
  detail::put_u32(out, 1 + 1 + 4 + payload);
  out.push_back(static_cast<char>(r.op));
  out.push_back(static_cast<char>(r.status));
  detail::put_u32(out, r.seq);
  if (get_ok || stats_ok) {
    detail::put_u32(out, static_cast<std::uint32_t>(r.value.size()));
    out.append(r.value.data(), r.value.size());
  } else if (r.op == WireOp::kPut) {
    out.push_back(r.created ? 1 : 0);
  } else if (r.op == WireOp::kScan) {
    detail::put_u32(out, r.scan_count);
  }
}

/// Incremental request decoder (server side).
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_frame = kMaxFrameBytes)
      : buf_(max_frame) {}

  void feed(const char* data, std::size_t n) { buf_.feed(data, n); }

  DecodeResult next(NetOp& out) {
    const char* body = nullptr;
    std::size_t len = 0;
    const DecodeResult r = buf_.frame(&body, &len);
    if (r != DecodeResult::kFrame) return r;
    if (!decode_body(body, len, out)) return DecodeResult::kMalformed;
    buf_.consume(len);
    return DecodeResult::kFrame;
  }

  bool buffered() const { return !buf_.empty(); }

 private:
  static bool decode_body(const char* p, std::size_t len, NetOp& out) {
    if (len < 1 + 4) return false;
    const std::uint8_t op = static_cast<std::uint8_t>(p[0]);
    if (op < static_cast<std::uint8_t>(WireOp::kGet) ||
        op > static_cast<std::uint8_t>(WireOp::kStats))
      return false;
    out.op = static_cast<WireOp>(op);
    out.seq = detail::get_u32(p + 1);
    out.key.clear();
    out.value.clear();
    out.scan_limit = 0;
    const char* q = p + 5;
    std::size_t rest = len - 5;
    switch (out.op) {
      case WireOp::kGet:
      case WireOp::kDel: {
        if (rest < 4) return false;
        const std::uint32_t klen = detail::get_u32(q);
        if (rest != 4 + static_cast<std::size_t>(klen)) return false;
        out.key.assign(q + 4, klen);
        return true;
      }
      case WireOp::kPut: {
        if (rest < 8) return false;
        const std::uint32_t klen = detail::get_u32(q);
        const std::uint32_t vlen = detail::get_u32(q + 4);
        if (rest != 8 + static_cast<std::size_t>(klen) +
                        static_cast<std::size_t>(vlen))
          return false;
        out.key.assign(q + 8, klen);
        out.value.assign(q + 8 + klen, vlen);
        return true;
      }
      case WireOp::kScan: {
        if (rest < 8) return false;
        const std::uint32_t klen = detail::get_u32(q);
        out.scan_limit = detail::get_u32(q + 4);
        if (rest != 8 + static_cast<std::size_t>(klen)) return false;
        out.key.assign(q + 8, klen);
        return true;
      }
      case WireOp::kStats:
        return rest == 0;
    }
    return false;
  }

  detail::FrameBuffer buf_;
};

/// Incremental response decoder (client side).
class ResponseDecoder {
 public:
  explicit ResponseDecoder(std::uint32_t max_frame = kMaxFrameBytes)
      : buf_(max_frame) {}

  void feed(const char* data, std::size_t n) { buf_.feed(data, n); }

  DecodeResult next(NetResponse& out) {
    const char* body = nullptr;
    std::size_t len = 0;
    const DecodeResult r = buf_.frame(&body, &len);
    if (r != DecodeResult::kFrame) return r;
    if (!decode_body(body, len, out)) return DecodeResult::kMalformed;
    buf_.consume(len);
    return DecodeResult::kFrame;
  }

  bool buffered() const { return !buf_.empty(); }

 private:
  static bool decode_body(const char* p, std::size_t len, NetResponse& out) {
    if (len < 1 + 1 + 4) return false;
    const std::uint8_t op = static_cast<std::uint8_t>(p[0]);
    const std::uint8_t st = static_cast<std::uint8_t>(p[1]);
    if (op < static_cast<std::uint8_t>(WireOp::kGet) ||
        op > static_cast<std::uint8_t>(WireOp::kStats))
      return false;
    if (st > static_cast<std::uint8_t>(WireStatus::kBadFrame)) return false;
    out.op = static_cast<WireOp>(op);
    out.status = static_cast<WireStatus>(st);
    out.seq = detail::get_u32(p + 2);
    out.value.clear();
    out.created = false;
    out.scan_count = 0;
    const char* q = p + 6;
    std::size_t rest = len - 6;
    const bool carries_value =
        (out.op == WireOp::kGet || out.op == WireOp::kStats) &&
        out.status == WireStatus::kOk;
    if (carries_value) {
      if (rest < 4) return false;
      const std::uint32_t vlen = detail::get_u32(q);
      if (rest != 4 + static_cast<std::size_t>(vlen)) return false;
      out.value.assign(q + 4, vlen);
      return true;
    }
    if (out.op == WireOp::kPut) {
      if (rest != 1) return false;
      out.created = p[6] != 0;
      return true;
    }
    if (out.op == WireOp::kScan) {
      if (rest != 4) return false;
      out.scan_count = detail::get_u32(q);
      return true;
    }
    return rest == 0;
  }

  detail::FrameBuffer buf_;
};

}  // namespace hohtm::net
