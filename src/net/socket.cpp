#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>

namespace hohtm::net {

int set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return -1;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int listen_tcp(std::uint16_t port, std::uint16_t* bound_port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(fd, 128) < 0 || set_nonblocking(fd) < 0) {
    close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      close(fd);
      return -1;
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

int connect_tcp(std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno != EINTR) {
      close(fd);
      return -1;
    }
  }
}

int make_eventfd() { return eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC); }

bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

std::uint64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace hohtm::net
